package core

import (
	"fmt"

	"repro/internal/bp"
	"repro/internal/iomethod"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// The adaptive method's message pumps — the sub-coordinator (Algorithm 2)
// and coordinator (Algorithm 3) receive loops — as run-to-completion
// continuation state machines. These are the protocol's densest message
// paths: every write in the step funnels a completion through an SC, and
// every adaptive redirect round-trips through C, so they run on the
// continuation engine unconditionally. REPRO_NO_CONT selects the engine for
// the straight-line rank bodies only; the pumps schedule the same events
// either way (SpawnCont, WaitCont, RecvCont, AfterSeconds and the pfs cont
// ops are event-for-event identical to their blocking counterparts), which
// is what keeps the two engines bit-identical.
//
// Shape of both machines:
//
//	state 0: wait for the step's start signal (recall style)
//	loop head: check the exit condition; otherwise feed own target and
//	           begin a receive (advance style — the wake resumes at the
//	           handler state, which reads the completed RecvOp)
//	handler:   switch on the envelope kind, recycle the envelope, loop
//	epilogue:  pfs cont ops for the index write, final send, done.Done()
//
// Like every continuation body, the machines signal completion (done.Done())
// in their final state rather than via defer, and they never yield without
// either parking in a primitive or returning true.

// scCont is the sub-coordinator loop (Algorithm 2) for one writer group.
type scCont struct {
	a    *Adaptive
	st   *stepState
	r    *mpisim.Rank
	g    int
	done *simkernel.WaitGroup

	pc             int
	waiting        simkernel.Ring[int] // writers not yet signalled
	myOffset       int64
	activeOnMyFile int
	completedOwn   int
	missingIndices int
	scCompleteSent bool
	loopDone       bool
	// ownDead latches when a write to our own file fails with
	// ErrTargetDown: stop feeding the own file and probe again after a
	// backoff (the timeout distinguishes dead from merely slow — slow
	// writes complete, dead ones fail). Waiting writers remain available
	// for adaptive redirection to healthy targets meanwhile.
	ownDead bool
	retry   func()
	li      bp.LocalIndex
	encLen  int

	indexEntries []bp.VarEntry
	indexDims    []uint64

	recv  mpisim.RecvOp
	write pfs.WriteOp
	flush pfs.FlushOp
	close pfs.CloseOp
}

// coordRank hosts the coordinator: the adaptive method pins C to rank 0.
const coordRank = 0

// arm readies the machine for one step. It runs after the step's setup
// barrier, so st.dataOf is complete and the index accumulation can be
// pre-sized here (the cold path) instead of in Step.
func (s *scCont) arm(a *Adaptive, r *mpisim.Rank, st *stepState, g int, done *simkernel.WaitGroup) {
	*s = scCont{a: a, st: st, r: r, g: g, done: done}
	for _, w := range st.groups[g] {
		s.waiting.Push(w)
	}
	// Pre-size for the typical case — every member writes to its own
	// group's file. Adaptive redirection shifts writers between files, so
	// this is a capacity hint, not a bound; append growth covers the
	// imbalance.
	nE, nD := 0, 0
	for _, w := range st.groups[g] {
		nE += len(st.dataOf[w].Vars)
		for _, v := range st.dataOf[w].Vars {
			nD += len(v.Dims)
		}
	}
	s.indexEntries = make([]bp.VarEntry, 0, nE)
	s.indexDims = make([]uint64, 0, nD)
	s.retry = func() { //repro:allow hotpath retry probe built once per step at arm time
		env := a.pool.get(kindRetryOwn)
		r.SendFrom(r.Rank(), r.Rank(), tagToSC, env)
	}
}

// signalNext is Algorithm 2 line 2: keep our own target fed, up to
// WritersPerTarget concurrent writers.
func (s *scCont) signalNext() {
	if s.ownDead {
		return
	}
	for s.activeOnMyFile < s.a.cfg.WritersPerTarget && s.waiting.Len() > 0 {
		wtr := s.waiting.Pop()
		env := s.a.pool.get(kindWriteGo)
		env.target, env.offset = s.g, s.myOffset
		s.r.SendFrom(s.r.Rank(), wtr, tagToWriter, env)
		s.myOffset += s.st.dataOf[wtr].TotalBytes()
		s.activeOnMyFile++
	}
}

// handle processes one protocol message. The caller recycles the envelope.
func (s *scCont) handle(env *scMsg) {
	a, st, g, r := s.a, s.st, s.g, s.r
	switch env.kind {
	case kindWriteComplete:
		if env.source == g && env.target != g {
			// One of mine completed an adaptive write elsewhere:
			// forward to C (Algorithm 2 line 6).
			ad := a.pool.get(kindAdaptiveDone)
			ad.source, ad.target, ad.bytes = g, env.target, env.bytes
			r.SendFrom(r.Rank(), coordRank, tagToC, ad)
			s.completedOwn++
		}
		if env.target == g {
			// A write to my file finished: slot free, and an index
			// body is now owed to me (lines 8–11).
			if env.source == g {
				s.activeOnMyFile--
				s.completedOwn++
			}
			s.missingIndices++
		}
		if s.completedOwn == len(st.groups[g]) && !s.scCompleteSent {
			s.scCompleteSent = true
			sc := a.pool.get(kindSCComplete)
			sc.group, sc.offset = g, s.myOffset
			r.SendFrom(r.Rank(), coordRank, tagToC, sc)
		}
	case kindIndexBody:
		s.indexEntries, s.indexDims = iomethod.AppendEntries(
			s.indexEntries, s.indexDims, env.writer, env.offset, st.dataOf[env.writer])
		s.missingIndices--
	case kindWriteFailed:
		// The writer's assigned target died past its timeout:
		// requeue the writer for another assignment.
		s.waiting.Push(env.writer)
		if env.target == g {
			// Our own target. Free the slot, latch ownDead, and
			// schedule a retry probe one timeout from now.
			s.activeOnMyFile--
			if !s.ownDead {
				s.ownDead = true
				a.w.Kernel().AfterSeconds(a.fs.Cfg.DeadTimeout, s.retry)
			}
		} else {
			// A failed adaptive redirect: release C's request slot
			// and let it blacklist the target (Algorithm 3 keeps the
			// offset unchanged — nothing landed).
			af := a.pool.get(kindAdaptiveFailed)
			af.source, af.target = g, env.target
			r.SendFrom(r.Rank(), coordRank, tagToC, af)
		}
	case kindRetryOwn:
		s.ownDead = false
	case kindAdaptiveStart:
		if s.waiting.Len() == 0 {
			wb := a.pool.get(kindWritersBusy)
			wb.group, wb.target = g, env.target
			r.SendFrom(r.Rank(), coordRank, tagToC, wb)
		} else {
			wtr := s.waiting.Pop()
			wg := a.pool.get(kindWriteGo)
			wg.target, wg.offset = env.target, env.offset
			r.SendFrom(r.Rank(), wtr, tagToWriter, wg)
		}
	case kindOverallComplete:
		s.loopDone = true
	default:
		panic(fmt.Sprintf("core: SC[g%d] unexpected message kind %d", g, env.kind))
	}
}

// Step drives the sub-coordinator; it mirrors the former goroutine loop
// statement for statement.
//
//repro:hotpath
func (s *scCont) Step(c *simkernel.ContProc) bool {
	a, st := s.a, s.st
	for {
		switch s.pc {
		case 0:
			if !st.start.WaitCont(c) {
				return false
			}
			s.pc = 1
		case 1:
			if s.loopDone && s.missingIndices == 0 {
				s.pc = 3
				continue
			}
			if !s.loopDone {
				s.signalNext()
			}
			s.pc = 2
			if !s.r.RecvCont(&s.recv, c, mpisim.AnySource, tagToSC) {
				return false
			}
		case 2:
			env := s.recv.Msg().Data.(*scMsg)
			s.handle(env)
			a.pool.put(env)
			s.pc = 1
		case 3:
			// Algorithm 2 epilogue: sort and merge the index pieces, write
			// the local index, send it to C.
			s.li = bp.LocalIndex{File: st.fileNames[s.g], Entries: s.indexEntries}
			s.li.Sort()
			n, err := s.li.EncodedLen()
			if err != nil {
				panic(err)
			}
			s.encLen = n
			s.write.BeginAppend(st.files[s.g], int64(n))
			s.pc = 4
		case 4:
			if !s.write.Step(c) {
				return false
			}
			if s.write.Err() != nil {
				// The on-disk footer is lost with its target; the in-memory
				// index still travels to C, so the data stays findable.
				st.res.WriteFailures++
				s.close.BeginClose(st.files[s.g])
				s.pc = 6
			} else {
				st.res.IndexBytes += float64(s.encLen)
				// Explicit flush before close (the paper's measurement
				// protocol).
				s.flush.BeginFlush(st.files[s.g])
				s.pc = 5
			}
		case 5:
			if !s.flush.Step(c) {
				return false
			}
			s.close.BeginClose(st.files[s.g])
			s.pc = 6
		default:
			if !s.close.Step(c) {
				return false
			}
			env := a.pool.get(kindLocalIndex)
			env.group = s.g
			env.index = s.li
			s.r.SendFrom(s.r.Rank(), coordRank, tagToC, env)
			s.done.Done()
			return true
		}
	}
}

// cCont is the coordinator loop (Algorithm 3).
type cCont struct {
	a    *Adaptive
	st   *stepState
	r    *mpisim.Rank
	done *simkernel.WaitGroup

	pc          int
	phase       []groupPhase
	offsets     []int64   // file-end offsets, valid once complete
	targetFree  []int     // free write slots on completed targets
	deadTarget  []bool    // targets blacklisted by a failed adaptive write
	speed       []float64 // observed bandwidth per target (HistoryAware)
	idle        []int     // scratch for dispatch's idle-target scan
	cursor      int       // rotation over SCs, to spread requests
	outstanding int       // in-flight adaptive requests
	completes   int
	gathered    int
	tStart      simkernel.Time
	global      *bp.GlobalIndex
	gf          *pfs.File
	encLen      int

	recv   mpisim.RecvOp
	create pfs.CreateOp
	write  pfs.WriteOp
	flush  pfs.FlushOp
	close  pfs.CloseOp
}

// arm readies the coordinator machine for one step.
func (s *cCont) arm(a *Adaptive, r *mpisim.Rank, st *stepState, done *simkernel.WaitGroup) {
	numGroups := len(st.groups)
	*s = cCont{
		a: a, st: st, r: r, done: done,
		phase:      make([]groupPhase, numGroups),
		offsets:    make([]int64, numGroups),
		targetFree: make([]int, numGroups),
		deadTarget: make([]bool, numGroups),
		speed:      make([]float64, numGroups),
	}
}

// nextWritingSC returns the next group in writing phase, rotating, or -1.
func (s *cCont) nextWritingSC() int {
	numGroups := len(s.st.groups)
	for i := 0; i < numGroups; i++ {
		gg := (s.cursor + i) % numGroups
		if s.phase[gg] == phaseWriting {
			s.cursor = (gg + 1) % numGroups
			return gg
		}
	}
	return -1
}

// dispatch pairs idle completed targets with writing SCs ("adaptive writing
// requests are spread evenly among the sub coordinators"). Targets are
// served in scan order or — with HistoryAware — fastest-first by observed
// bandwidth.
func (s *cCont) dispatch() {
	if s.a.cfg.DisableAdaptation {
		return
	}
	s.idle = s.idle[:0]
	for t := 0; t < len(s.phase); t++ {
		if s.phase[t] == phaseComplete && s.targetFree[t] > 0 && !s.deadTarget[t] {
			s.idle = append(s.idle, t)
		}
	}
	if s.a.cfg.HistoryAware {
		sortByDesc(s.idle, s.speed)
	}
	for _, t := range s.idle {
		for s.targetFree[t] > 0 {
			sc := s.nextWritingSC()
			if sc < 0 {
				return
			}
			s.targetFree[t]--
			s.outstanding++
			env := s.a.pool.get(kindAdaptiveStart)
			env.target, env.offset = t, s.offsets[t]
			s.r.SendFrom(coordRank, s.st.groups[sc][0], tagToSC, env)
			// The offset advances only at completion; one request
			// in flight per target keeps offsets consistent.
		}
	}
}

// handle processes one protocol message. The caller recycles the envelope.
func (s *cCont) handle(env *scMsg) {
	switch env.kind {
	case kindSCComplete:
		s.phase[env.group] = phaseComplete
		s.offsets[env.group] = env.offset
		if el := (s.a.w.Kernel().Now() - s.tStart).Seconds(); el > 0 {
			s.speed[env.group] = float64(env.offset) / el
		}
		// Adaptive writes to a completed file stay serialised (one
		// request in flight per target) because the next append
		// offset is only learned from the completion report. The
		// WritersPerTarget generalisation applies to a group's own
		// file, as in the paper.
		s.targetFree[env.group] = 1
		s.completes++
		s.dispatch()
	case kindAdaptiveDone:
		s.offsets[env.target] += env.bytes
		s.targetFree[env.target]++
		s.outstanding--
		s.dispatch()
	case kindAdaptiveFailed:
		// The redirect target is dead: blacklist it (its slot is not
		// returned — nothing can land there) and redispatch the
		// requeued writer elsewhere. A dead target stays blacklisted
		// for the rest of the step; the conservative choice costs at
		// most the work it could have absorbed after reviving.
		s.deadTarget[env.target] = true
		s.outstanding--
		s.dispatch()
	case kindWritersBusy:
		// Guard against the race where the SC completed (and we
		// already marked it so) between our request and its refusal:
		// never downgrade a completed group.
		if s.phase[env.group] == phaseWriting {
			s.phase[env.group] = phaseBusy
		}
		s.targetFree[env.target]++
		s.outstanding--
		s.dispatch()
	default:
		panic(fmt.Sprintf("core: C unexpected message kind %d", env.kind))
	}
}

// Step drives the coordinator; it mirrors the former goroutine loop
// statement for statement.
//
//repro:hotpath
func (s *cCont) Step(c *simkernel.ContProc) bool {
	a, st := s.a, s.st
	numGroups := len(st.groups)
	for {
		switch s.pc {
		case 0:
			if !st.start.WaitCont(c) {
				return false
			}
			s.tStart = c.Now()
			s.pc = 1
		case 1:
			if s.completes >= numGroups && s.outstanding == 0 {
				s.pc = 3
				continue
			}
			s.pc = 2
			if !s.r.RecvCont(&s.recv, c, mpisim.AnySource, tagToC) {
				return false
			}
		case 2:
			env := s.recv.Msg().Data.(*scMsg)
			s.handle(env)
			a.pool.put(env)
			s.pc = 1
		case 3:
			// Release the sub-coordinators to write their local indices.
			for g := 0; g < numGroups; g++ {
				env := a.pool.get(kindOverallComplete)
				s.r.SendFrom(coordRank, st.groups[g][0], tagToSC, env)
			}
			s.global = &bp.GlobalIndex{Step: int64(st.seq)}
			s.pc = 4
		case 4:
			// Gather index pieces, merge into the global index, write it.
			if s.gathered < numGroups {
				s.pc = 5
				if !s.r.RecvCont(&s.recv, c, mpisim.AnySource, tagToC) {
					return false
				}
				continue
			}
			s.global.Sort()
			st.res.Global = s.global
			if !a.cfg.WriteGlobalIndex {
				s.done.Done()
				return true
			}
			n, err := s.global.EncodedLen()
			if err != nil {
				panic(err)
			}
			s.encLen = n
			s.create.BeginCreate(a.fs, st.gidxName, pfs.Layout{StripeCount: 1})
			s.pc = 6
		case 5:
			env := s.recv.Msg().Data.(*scMsg)
			if env.kind != kindLocalIndex {
				panic(fmt.Sprintf("core: C expected local index, got kind %d", env.kind))
			}
			s.global.Locals = append(s.global.Locals, env.index)
			a.pool.put(env)
			s.gathered++
			s.pc = 4
		case 6:
			if !s.create.Step(c) {
				return false
			}
			if err := s.create.Err(); err != nil {
				panic(err)
			}
			s.gf = s.create.File()
			s.write.BeginWrite(s.gf, 0, int64(s.encLen))
			s.pc = 7
		case 7:
			if !s.write.Step(c) {
				return false
			}
			if s.write.Err() != nil {
				// Global index lost; the per-file indices (and res.Global)
				// survive, matching the paper's interim deployment.
				st.res.WriteFailures++
				s.close.BeginClose(s.gf)
				s.pc = 9
			} else {
				st.res.IndexBytes += float64(s.encLen)
				s.flush.BeginFlush(s.gf)
				s.pc = 8
			}
		case 8:
			if !s.flush.Step(c) {
				return false
			}
			s.close.BeginClose(s.gf)
			s.pc = 9
		default:
			if !s.close.Step(c) {
				return false
			}
			s.done.Done()
			return true
		}
	}
}
