// XGC1 under artificial interference: reproduce the paper's Section IV
// environment — the fusion code's 38 MB/process output while a separate
// program hammers 8 storage targets with 24 continuous 1 GB writers — and
// show how each transport copes.
//
//	go run ./examples/xgc1
package main

import (
	"fmt"
	"log"

	"repro/adios"
	"repro/cluster"
	"repro/internal/workloads"
	"repro/metrics"
)

const (
	ranks   = 256
	numOSTs = 64
	mpiOSTs = 20
	seed    = 23
)

func main() {
	fmt.Println("== XGC1 (38 MB/process) under artificial interference ==")
	fmt.Println("interference: 24 processes continuously writing 1 GB chunks,")
	fmt.Println("three per storage target across 8 targets (paper Section IV)")
	fmt.Println()

	var tbl metrics.Table
	tbl.Header = []string{"method", "condition", "write time", "aggregate BW", "adaptive writes", "imbalance"}
	for _, method := range []adios.Method{adios.MethodMPI, adios.MethodAdaptive} {
		for _, interfere := range []bool{false, true} {
			res := run(method, interfere)
			cond := "base"
			if interfere {
				cond = "interference"
			}
			tbl.AddRow(string(method), cond,
				fmt.Sprintf("%.2fs", res.Elapsed),
				metrics.FormatBytesPerSec(res.AggregateBW()),
				fmt.Sprintf("%d", res.AdaptiveWrites),
				fmt.Sprintf("%.2f", metrics.ImbalanceFactor(res.WriterTimes)))
		}
	}
	fmt.Println(tbl.Render())
	fmt.Println("Note how the adaptive method drains the interfered targets' queues")
	fmt.Println("through the untouched ones: its interference penalty stays small,")
	fmt.Println("while the shared-file baseline is held hostage by its slowest stripe.")
}

func run(method adios.Method, interfere bool) *adios.StepResult {
	c := cluster.Jaguar(cluster.Config{Seed: seed, NumOSTs: numOSTs, ProductionNoise: true})
	defer c.Shutdown()
	if interfere {
		// The paper's exact program: defaults are 8 targets × 3 procs × 1 GB.
		c.StartArtificialInterference(nil, 0, 0)
	}
	w := c.NewWorld(ranks)
	opts := adios.Options{Method: method}
	if method == adios.MethodMPI {
		opts.OSTs = firstN(mpiOSTs)
	}
	io, err := adios.NewIO(c, w, opts)
	if err != nil {
		log.Fatal(err)
	}
	var res *adios.StepResult
	join := w.Launch(func(r *cluster.Rank) {
		f := io.Open(r, "xgc1.restart")
		f.WriteData(workloads.XGC1(r.Rank()))
		rr, err := f.Close()
		if err != nil {
			log.Fatal(err)
		}
		res = rr
	})
	c.RunUntilDone(join)
	return res
}

func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
