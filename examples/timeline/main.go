// Timeline: trace the storage system while an adaptive output step runs
// under artificial interference, then render what happened — which targets
// were busy, which were degraded, and how aggregate throughput evolved.
// This is the paper's Figure 4 organisation made visible at runtime: the
// interfered targets stay dark in the slowness map while the adaptive
// method's activity migrates to the clean ones.
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"log"

	"repro/adios"
	"repro/cluster"
	"repro/internal/workloads"
	"repro/metrics"
)

func main() {
	c := cluster.Jaguar(cluster.Config{Seed: 41, NumOSTs: 12, ProductionNoise: true})
	defer c.Shutdown()

	// The paper's interference program scaled down: continuous writers on
	// the first 4 targets, on top of production background noise.
	c.StartArtificialInterference([]int{0, 1, 2, 3}, 3, 1<<28)

	tr := c.Trace(1.0)

	w := c.NewWorld(96)
	io, err := adios.NewIO(c, w, adios.Options{Method: adios.MethodAdaptive})
	if err != nil {
		log.Fatal(err)
	}
	var res *adios.StepResult
	join := w.Launch(func(r *cluster.Rank) {
		f := io.Open(r, "traced.step")
		f.WriteData(workloads.Pixie3D(r.Rank(), workloads.Pixie3DLarge))
		rr, err := f.Close()
		if err != nil {
			log.Fatal(err)
		}
		res = rr
	})
	c.RunUntilDone(join)
	tr.Stop()

	fmt.Println("== adaptive IO under interference, traced ==")
	fmt.Printf("96 ranks x 128 MB through 12 targets (4 interfered): %.2fs, %s, %d adaptive writes\n\n",
		res.Elapsed, metrics.FormatBytesPerSec(res.AggregateBW()), res.AdaptiveWrites)
	fmt.Println(tr.RenderSlowness(64))
	fmt.Println(tr.RenderActivity(64))
}
