// Quickstart: write one output step through adaptive IO on a simulated
// Jaguar, inspect the result, and exercise the BP index — including
// persisting the real encoded global index to disk and reading it back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/adios"
	"repro/cluster"
	"repro/internal/bp"
	"repro/metrics"
)

func main() {
	// A scaled-down Jaguar: 64 storage targets, production background
	// noise on, fully deterministic under the seed.
	c := cluster.Jaguar(cluster.Config{Seed: 7, NumOSTs: 64, ProductionNoise: true})
	defer c.Shutdown()

	const ranks = 256
	w := c.NewWorld(ranks)

	io, err := adios.NewIO(c, w, adios.Options{Method: adios.MethodAdaptive})
	if err != nil {
		log.Fatal(err)
	}

	var result *adios.StepResult
	join := w.Launch(func(r *cluster.Rank) {
		// Each rank writes two 3-D double-precision arrays, 8 MB each,
		// declaring value-range characteristics for the index.
		f := io.Open(r, "restart.0001")
		f.Write("density", 8<<20, []uint64{128, 128, 64}, 0.1, 2.5)
		f.Write("pressure", 8<<20, []uint64{128, 128, 64}, float64(r.Rank()), float64(r.Rank())+1)
		res, err := f.Close()
		if err != nil {
			log.Fatal(err)
		}
		result = res
	})
	c.RunUntilDone(join)

	fmt.Println("== adaptive IO quickstart ==")
	fmt.Printf("ranks:            %d writers over %d storage targets\n", ranks, c.NumOSTs())
	fmt.Printf("payload written:  %s across %d subfiles\n",
		metrics.FormatBytes(result.TotalBytes), result.Files)
	fmt.Printf("operation time:   %.2fs virtual\n", result.Elapsed)
	fmt.Printf("aggregate rate:   %s\n", metrics.FormatBytesPerSec(result.AggregateBW()))
	fmt.Printf("adaptive writes:  %d redirected to faster targets\n", result.AdaptiveWrites)

	times := metrics.Summarize(result.WriterTimes)
	fmt.Printf("per-writer time:  min %.2fs  mean %.2fs  max %.2fs (imbalance %.2f)\n",
		times.Min, times.Mean, times.Max, metrics.ImbalanceFactor(result.WriterTimes))

	// The index: find rank 42's pressure block by name, then by value.
	loc, ok := result.Lookup("pressure", 42)
	if !ok {
		log.Fatal("index lookup failed")
	}
	fmt.Printf("index lookup:     pressure/rank42 -> %s @ offset %d (%s)\n",
		loc.File, loc.Entry.Offset, metrics.FormatBytes(float64(loc.Entry.Length)))

	hits := result.FindByValue("pressure", 42.5, 42.6)
	fmt.Printf("value search:     pressure in [42.5,42.6] -> %d block(s)\n", len(hits))

	// Persist the real encoded global index and read it back — the bytes
	// on disk are the BP-style format the sub-coordinators write.
	enc, err := result.Index().Encode()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "restart.0001.gidx.bp")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	back, err := bp.DecodeGlobal(mustRead(path))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index round-trip: %d entries in %d locals via %s (%s on disk)\n",
		back.NumEntries(), len(back.Locals), path, metrics.FormatBytes(float64(len(enc))))
}

func mustRead(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	return b
}
