// Interference anatomy: watch external interference create the imbalance
// the paper measures. Runs repeated IOR-style tests (one writer per storage
// target) on a busy simulated Jaguar and prints, for each test, the
// bandwidth, the imbalance factor, and an ASCII profile of per-writer write
// times — the live version of the paper's Figure 3.
//
//	go run ./examples/interference
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/cluster"
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/metrics"
)

const (
	numOSTs = 48
	tests   = 6
	gap     = 180.0 // seconds between tests, the paper's "3 minutes later"
	bytes   = 128 * pfs.MB
)

func main() {
	c := cluster.Jaguar(cluster.Config{Seed: 31, NumOSTs: numOSTs, ProductionNoise: true})
	defer c.Shutdown()
	fs := c.FileSystem()

	fmt.Println("== external interference, live (paper Figure 3) ==")
	fmt.Printf("%d writers, one per storage target, %s each, %d tests %.0fs apart\n\n",
		numOSTs, metrics.FormatBytes(bytes), tests, gap)

	var imbalances []float64
	for i := 0; i < tests; i++ {
		res, err := ior.Execute(fs, ior.Config{
			Writers:        numOSTs,
			BytesPerWriter: bytes,
			Mode:           ior.FilePerProcess,
			Tag:            fmt.Sprintf("t%d", i),
		})
		if err != nil {
			log.Fatal(err)
		}
		imbalances = append(imbalances, res.ImbalanceFactor)
		fmt.Printf("test %d @ t=%6.0fs   %8s   imbalance %.2f\n",
			i, c.Now(), metrics.FormatBytesPerSec(res.AggregateBW), res.ImbalanceFactor)
		fmt.Println(profile(res.WriterTimes))
		c.RunFor(time.Duration(gap * float64(time.Second)))
	}

	sum := metrics.Summarize(imbalances)
	fmt.Printf("imbalance across tests: avg %.2f  min %.2f  max %.2f\n", sum.Mean, sum.Min, sum.Max)
	fmt.Println("(the paper observed an overall average near 2, with tests as high as 3.44 —")
	fmt.Println(" and notes the slowest writer determines the whole operation's time)")
}

// profile draws per-writer write times as a compact strip: one character
// per writer, '.' for near-fastest through '#' for the slowest.
func profile(times []float64) string {
	sum := metrics.Summarize(times)
	if sum.Max == sum.Min {
		return strings.Repeat(".", len(times))
	}
	glyphs := []byte(".:-=+*%#")
	var b strings.Builder
	b.WriteString("  [")
	for _, t := range times {
		frac := (t - sum.Min) / (sum.Max - sum.Min)
		idx := int(frac * float64(len(glyphs)-1))
		b.WriteByte(glyphs[idx])
	}
	b.WriteString("]  '.'=fast '#'=slow")
	return b.String()
}
