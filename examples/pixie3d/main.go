// Pixie3D campaign: run the paper's Figure 5(b) comparison at reduced scale
// — the Pixie3D large data model (128 MB/process) written through the
// MPI-IO baseline and through adaptive IO, on a busy simulated Jaguar,
// several output steps each, then print the side-by-side outcome.
//
//	go run ./examples/pixie3d
package main

import (
	"fmt"
	"log"

	"repro/adios"
	"repro/cluster"
	"repro/internal/workloads"
	"repro/metrics"
)

const (
	ranks    = 256
	numOSTs  = 64
	mpiOSTs  = 20 // stands in for the 160-of-512 single-file limit
	steps    = 3
	seedBase = 11
)

func main() {
	fmt.Println("== Pixie3D large (128 MB/process) — MPI-IO vs adaptive IO ==")
	fmt.Printf("ranks=%d, machine=%d OSTs, MPI limited to %d targets\n\n", ranks, numOSTs, mpiOSTs)

	mpiTimes := campaign(adios.MethodMPI)
	adaTimes := campaign(adios.MethodAdaptive)

	var tbl metrics.Table
	tbl.Title = "Per-step total write time (seconds)"
	tbl.Header = []string{"step", "MPI-IO", "ADAPTIVE", "speedup"}
	for i := range mpiTimes {
		tbl.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.2f", mpiTimes[i]),
			fmt.Sprintf("%.2f", adaTimes[i]),
			fmt.Sprintf("%.2fx", mpiTimes[i]/adaTimes[i]))
	}
	fmt.Println(tbl.Render())

	m := metrics.Summarize(mpiTimes)
	a := metrics.Summarize(adaTimes)
	fmt.Printf("MPI-IO   : mean %.2fs  stddev %.2fs\n", m.Mean, m.StdDev)
	fmt.Printf("ADAPTIVE : mean %.2fs  stddev %.2fs\n", a.Mean, a.StdDev)
	fmt.Printf("\nadaptive is %.2fx faster on average with %.1fx lower variability\n",
		m.Mean/a.Mean, safeRatio(m.StdDev, a.StdDev))
}

// campaign runs `steps` Pixie3D output steps through one method and
// returns the per-step total write times.
func campaign(method adios.Method) []float64 {
	c := cluster.Jaguar(cluster.Config{Seed: seedBase, NumOSTs: numOSTs, ProductionNoise: true})
	defer c.Shutdown()
	w := c.NewWorld(ranks)

	opts := adios.Options{Method: method}
	if method == adios.MethodMPI {
		opts.OSTs = firstN(mpiOSTs)
	}
	io, err := adios.NewIO(c, w, opts)
	if err != nil {
		log.Fatal(err)
	}

	times := make([]float64, 0, steps)
	join := w.Launch(func(r *cluster.Rank) {
		for s := 0; s < steps; s++ {
			// The simulation computes for a while between outputs (the
			// paper's codes write every 15–30 minutes; 30s keeps the
			// example fast while letting the machine's load drift).
			r.Proc().SleepSeconds(30)

			f := io.Open(r, fmt.Sprintf("pixie3d.%04d", s))
			f.WriteData(workloads.Pixie3D(r.Rank(), workloads.Pixie3DLarge))
			res, err := f.Close()
			if err != nil {
				log.Fatal(err)
			}
			if r.Rank() == 0 {
				times = append(times, res.Elapsed)
			}
		}
	})
	c.RunUntilDone(join)
	return times
}

func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
