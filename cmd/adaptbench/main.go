// Command adaptbench reproduces the paper's Section IV evaluation: Pixie3D
// (Figure 5 a/b/c) and XGC1 (Figure 6) under the MPI-IO baseline vs the
// adaptive method, with and without artificial interference, plus the
// write-time standard deviations (Figure 7) and the speedup summaries the
// paper quotes in prose.
//
// Usage:
//
//	adaptbench -experiment fig5 [-size small|large|xl|all] [-procs 512,...,16384] [-samples 5]
//	adaptbench -experiment fig6 [-procs ...] [-samples 5]
//	adaptbench -experiment fig7 [-size ...]   (runs fig5+fig6 then reduces)
//	adaptbench -scenario fig5-small -set procs=64,128   (the registry path)
//
// Scale knobs: -num-osts shrinks the simulated machine; -mpi-osts and
// -adaptive-osts set the per-method target counts (paper: 160 and 512).
// -parallel spreads the method × condition × procs × samples grid across a
// replica worker pool (0 = all cores) with bit-identical results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/scenario/scenariocli"
	"repro/internal/workloads"
)

func main() {
	cli := scenariocli.Register(flag.CommandLine, "")
	var (
		experiment = flag.String("experiment", "fig5", "fig5 | fig6 | fig7")
		size       = flag.String("size", "all", "pixie3d size: small | large | xl | all")
		procsStr   = flag.String("procs", "", "process counts (default paper grid 512..16384)")
		samples    = flag.Int("samples", 5, "samples per point (paper: at least 5)")
		mpiOSTs    = flag.Int("mpi-osts", 160, "MPI-IO storage targets (single-file limit)")
		adOSTs     = flag.Int("adaptive-osts", 512, "adaptive-method storage targets")
		numOSTs    = flag.Int("num-osts", 0, "simulated machine targets (0 = full Jaguar)")
		baseOnly   = flag.Bool("base-only", false, "skip the artificial-interference condition")
		csv        = flag.Bool("csv", false, "emit CSV instead of rendered tables")
		chart      = flag.Bool("chart", false, "also draw ASCII bar charts")
	)
	flag.Parse()

	stopProf, err := cli.StartProfiling()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if cli.ScenarioRequested() {
		if err := cli.RunScenario("adaptbench"); err != nil {
			fatal(err)
		}
		return
	}

	eval := experiments.EvalOptions{
		ProcCounts:   parseInts(*procsStr),
		Samples:      *samples,
		MPIOSTs:      *mpiOSTs,
		AdaptiveOSTs: *adOSTs,
		NumOSTs:      *numOSTs,
		Seed:         cli.Seed,
		Parallel:     cli.Parallel,
	}
	if *baseOnly {
		eval.Conditions = []experiments.Condition{experiments.Base}
	}

	switch *experiment {
	case "fig5":
		panels, err := experiments.Fig5(experiments.Fig5Options{Eval: eval, Sizes: sizesOf(*size)})
		if err != nil {
			fatal(err)
		}
		for _, er := range panels.Panels {
			emit(er, *csv, *chart)
		}
	case "fig6":
		er, err := experiments.Fig6(eval)
		if err != nil {
			fatal(err)
		}
		emit(er, *csv, *chart)
	case "fig7":
		var all []*experiments.EvalResult
		panels, err := experiments.Fig5(experiments.Fig5Options{Eval: eval, Sizes: sizesOf(*size)})
		if err != nil {
			fatal(err)
		}
		all = append(all, panels.Panels...)
		xg, err := experiments.Fig6(eval)
		if err != nil {
			fatal(err)
		}
		all = append(all, xg)
		for _, fig := range experiments.Fig7(all) {
			if *csv {
				fmt.Println(fig.CSV())
			} else {
				fmt.Println(fig.Render())
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func emit(er *experiments.EvalResult, csv, chart bool) {
	if csv {
		fmt.Println(er.Figure.CSV())
		return
	}
	fmt.Println(er.Figure.Render())
	if chart {
		fmt.Println(er.Figure.Chart(50))
	}
	tbl := experiments.SpeedupSummary(er)
	fmt.Println(tbl.Render())
}

func sizesOf(s string) []workloads.Pixie3DSize {
	switch s {
	case "small":
		return []workloads.Pixie3DSize{workloads.Pixie3DSmall}
	case "large":
		return []workloads.Pixie3DSize{workloads.Pixie3DLarge}
	case "xl":
		return []workloads.Pixie3DSize{workloads.Pixie3DXL}
	case "all", "":
		return nil
	}
	fmt.Fprintf(os.Stderr, "unknown size %q\n", s)
	os.Exit(2)
	return nil
}

func parseInts(s string) []int {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	out, err := scenariocli.ParseInts(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adaptbench:", err)
	os.Exit(1)
}
