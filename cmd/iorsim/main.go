// Command iorsim reproduces the paper's Section II measurements: the IOR
// internal-interference grid (Figure 1), the external-interference
// variability study (Table I), its bandwidth histograms (Figure 2), and the
// imbalanced-writers illustration (Figure 3).
//
// Usage:
//
//	iorsim -experiment fig1  [-osts 512] [-samples 40] [-sizes 1,8,128,1024] [-ratios 1,2,4,8,16,32]
//	iorsim -experiment table1 [-samples 469] [-scale 1]
//	iorsim -experiment fig2  [-samples 469] [-scale 1] [-bins 12]
//	iorsim -experiment fig3  [-osts 512] [-avg-over 40]
//	iorsim -scenario fig1 -set osts=32            (the registry path)
//	iorsim -scenario my-spec.json -trace
//
// All experiments accept -seed and -parallel (replica workers; 0 = all
// cores), plus -cpuprofile/-memprofile. Reduced -osts / -scale runs
// preserve the per-target ratios that drive every effect, so shapes persist
// at a fraction of the cost. Parallel runs are bit-identical to sequential
// ones: every replica's world derives from its grid coordinates, never from
// scheduling order.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/scenario/scenariocli"
	"repro/metrics"
)

func main() {
	cli := scenariocli.Register(flag.CommandLine, "")
	var (
		experiment = flag.String("experiment", "fig1", "fig1 | table1 | fig2 | fig3")
		osts       = flag.Int("osts", 512, "storage targets (fig1/fig3)")
		samples    = flag.Int("samples", 0, "samples per point (0 = paper default)")
		sizes      = flag.String("sizes", "1,8,128,1024", "per-writer sizes in MB (fig1)")
		ratios     = flag.String("ratios", "1,2,4,8,16,32", "writers-per-OST ratios (fig1)")
		scale      = flag.Int("scale", 1, "scale divisor for table1/fig2 machine sizes")
		bins       = flag.Int("bins", 12, "histogram bins (fig2)")
		avgOver    = flag.Int("avg-over", 40, "tests feeding the average imbalance (fig3)")
		noNoise    = flag.Bool("no-noise", false, "disable production background noise (fig1)")
		csv        = flag.Bool("csv", false, "emit CSV instead of rendered tables")
	)
	flag.Parse()

	stopProf, err := cli.StartProfiling()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if cli.ScenarioRequested() {
		if err := cli.RunScenario("iorsim"); err != nil {
			fatal(err)
		}
		return
	}

	switch *experiment {
	case "fig1":
		runFig1(*osts, *samples, *sizes, *ratios, cli.Seed, *noNoise, *csv, cli.Parallel)
	case "table1", "fig2":
		runTableI(*experiment, *samples, *scale, *bins, cli.Seed, *csv, cli.Parallel)
	case "fig3":
		runFig3(*osts, *avgOver, cli.Seed, cli.Parallel)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func parseFloats(s string) []float64 {
	out, err := scenariocli.ParseFloats(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return out
}

func parseInts(s string) []int {
	out, err := scenariocli.ParseInts(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return out
}

func runFig1(osts, samples int, sizes, ratios string, seed int64, noNoise, csv bool, parallel int) {
	opt := experiments.Fig1Options{
		OSTs:     osts,
		Ratios:   parseInts(ratios),
		SizesMB:  parseFloats(sizes),
		Samples:  samples,
		Seed:     seed,
		NoNoise:  noNoise,
		Parallel: parallel,
	}
	fmt.Printf("# Figure 1 — internal interference (IOR, POSIX-IO, one file per writer)\n")
	fmt.Printf("# OSTs=%d samples/point=%d noise=%v\n\n", opt.OSTs, orPaper(samples, 40), !noNoise)
	res, err := experiments.Fig1(opt)
	if err != nil {
		fatal(err)
	}
	if csv {
		fmt.Println(res.Aggregate.CSV())
		fmt.Println(res.PerWriter.CSV())
		return
	}
	fmt.Println(res.Aggregate.Render())
	fmt.Println(res.PerWriter.Render())
	if bad := experiments.Fig1ShapeChecks(res, opt); len(bad) > 0 {
		fmt.Println("shape-check violations:")
		for _, b := range bad {
			fmt.Println("  -", b)
		}
	} else {
		fmt.Println("shape-check: all Figure 1 qualitative claims hold")
	}
}

func runTableI(which string, samples, scale, bins int, seed int64, csv bool, parallel int) {
	opt := experiments.TableIOptions{
		JaguarSamples:   samples,
		FranklinSamples: samples,
		XTPSamples:      samples,
		ScaleOSTs:       scale,
		Seed:            seed,
		Parallel:        parallel,
	}
	res, err := experiments.TableI(opt)
	if err != nil {
		fatal(err)
	}
	if which == "table1" {
		if csv {
			fmt.Println(res.Table.CSV())
			return
		}
		fmt.Println(res.Table.Render())
		fmt.Println("\nImbalance factors (slowest/fastest writer):")
		for _, s := range res.Series {
			sum := metrics.Summarize(s.Imbalances)
			fmt.Printf("  %-20s avg %.2f  max %.2f\n", s.Machine, sum.Mean, sum.Max)
		}
		return
	}
	for _, h := range experiments.Fig2(res, bins) {
		fmt.Println(h.Render())
	}
}

func runFig3(osts, avgOver int, seed int64, parallel int) {
	res, err := experiments.Fig3(experiments.Fig3Options{
		OSTs:        osts,
		AverageOver: avgOver,
		Seed:        seed,
		Parallel:    parallel,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println("# Figure 3 — imbalanced concurrent writers (two tests 3 minutes apart)")
	fmt.Printf("Test 1 imbalance factor: %.2f\n", res.Imbalance1)
	fmt.Printf("Test 2 imbalance factor: %.2f\n", res.Imbalance2)
	fmt.Printf("Overall average imbalance (%d tests): %.2f  (max %.2f)\n\n",
		avgOver, res.AvgImbalance, res.MaxImbalance)
	fmt.Println("Per-writer write times, test 1 vs test 2 (seconds):")
	sum1 := metrics.Summarize(res.Test1Times)
	sum2 := metrics.Summarize(res.Test2Times)
	fmt.Printf("  test1: min %.2f  mean %.2f  max %.2f\n", sum1.Min, sum1.Mean, sum1.Max)
	fmt.Printf("  test2: min %.2f  mean %.2f  max %.2f\n", sum2.Min, sum2.Mean, sum2.Max)
	h1 := metrics.HistogramFigure{Title: "Test 1 write-time distribution", XUnit: "s", Bins: 10, Data: res.Test1Times}
	h2 := metrics.HistogramFigure{Title: "Test 2 write-time distribution", XUnit: "s", Bins: 10, Data: res.Test2Times}
	fmt.Println(h1.Render())
	fmt.Println(h2.Render())
}

func orPaper(v, dflt int) int {
	if v <= 0 {
		return dflt
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iorsim:", err)
	os.Exit(1)
}
