// Reprolint is the multichecker for the repro static-analysis suite
// (internal/analysis): nodeterm, rngxonly, hotpath, resetcomplete, poolown,
// contblock and ringdiscipline.
//
// It runs two ways:
//
//	reprolint [-json] [packages]
//		Standalone: loads the named package patterns (default ./...) through
//		`go list -deps -export`, analyzes every package including test files,
//		prints findings and exits 2 if there were any. With -json the
//		findings go to stdout as one JSON array of {file, line, column,
//		analyzer, message, package} objects instead of text on stderr.
//
//	go vet -vettool=$(which reprolint) ./...
//		As cmd/go's vet tool, speaking the unit-checker protocol: cmd/go
//		invokes the binary once per package with a vet.cfg path, and with
//		-V=full to fingerprint the tool for the build cache.
//
// The protocol implementation is stdlib-only (this module deliberately has no
// dependencies), mirroring what golang.org/x/tools/go/analysis/unitchecker
// does: read the JSON config, type-check the unit against the export data
// cmd/go already built, analyze, report to stderr with exit code 2.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// cmd/go probes the tool's identity with `reprolint -V=full` before using
	// it; the reply must be `<name> version devel ... buildID=<hex>` so the
	// build cache can tell tool versions apart.
	versionFlag := flag.String("V", "", "print version and exit (cmd/go protocol)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flags as JSON and exit (cmd/go protocol)")
	jsonFlag := flag.Bool("json", false, "standalone mode: print findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reprolint [-json] [packages]\n   or: go vet -vettool=$(which reprolint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		// cmd/go asks which tool flags it may forward; this suite exposes
		// none beyond the protocol's own.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnitchecker(args[0])
		return
	}
	runStandalone(args, *jsonFlag)
}

func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("reprolint version devel buildID=%x\n", h.Sum(nil)[:16])
}

func runStandalone(patterns []string, asJSON bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(1)
	}
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		diags, err := analysis.RunSuite(pkg, analysis.Suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(1)
		}
		findings = append(findings, analysis.FindingsFrom(pkg, diags)...)
	}
	if asJSON {
		if err := analysis.WriteFindingsJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// vetConfig is the JSON unit description cmd/go hands the vet tool; field
// names and meanings follow cmd/go/internal/work's vetConfig.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}

	// Facts would flow between packages through vetx files; this suite has
	// none, so a dependency-only (VetxOnly) run has nothing to do beyond
	// recording that fact for the cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("reprolint: no facts\n"), 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatal(err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	pkg := &analysis.Package{Fset: fset, Files: files, Info: analysis.NewInfo(), Path: cfg.ImportPath}
	if i := strings.Index(pkg.Path, " ["); i >= 0 {
		pkg.Path = pkg.Path[:i]
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkg.Path, fset, files, pkg.Info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err))
	}
	pkg.Types = tpkg

	diags, err := analysis.RunSuite(pkg, analysis.Suite())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprolint:", err)
	os.Exit(1)
}
