// Command repro regenerates every table and figure of the paper in one run
// and writes the rendered artifacts to a results directory.
//
// Two presets:
//
//	repro -mode quick   — scaled-down grids (ratios preserved), minutes
//	repro -mode full    — the paper's configuration (512 OSTs, writer
//	                      counts to 16384, 40/469 samples), hours
//
// Artifacts land in -out (default ./results): one .txt per table/figure
// plus summary.txt with the headline comparisons.
//
// Individual experiments (or any custom spec) run through the scenario
// registry instead:
//
//	repro -scenario fig1 -set osts=32 -set samples=4
//	repro -scenario examples/custom.json -set procs=32
//
// Campaigns run on a replica worker pool (-parallel, default all cores) with
// results bit-identical to a sequential run; -seq-baseline additionally
// reruns each driver on one worker and prints the measured speedup.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/scenario/scenariocli"
	"repro/metrics"
)

func main() {
	cli := scenariocli.Register(flag.CommandLine, "results")
	var (
		only    = flag.String("only", "", "comma list to restrict: fig1,table1,fig2,fig3,fig5,fig6,fig7")
		seqBase = flag.Bool("seq-baseline", false, "rerun each driver sequentially and report the parallel speedup")
	)
	flag.Parse()

	stopProf, err := cli.StartProfiling()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if cli.ScenarioRequested() {
		if err := cli.RunScenario("repro"); err != nil {
			fatal(err)
		}
		return
	}

	mode, out, seed, parallel := cli.Mode, cli.Out, cli.Seed, cli.Parallel
	fig1Opt, err := experiments.Fig1Preset(mode)
	if err != nil {
		fatal(err)
	}
	table1Opt, _ := experiments.TableIPreset(mode)
	fig3Opt, _ := experiments.Fig3Preset(mode)
	evalOpt, _ := experiments.EvalPreset(mode)
	fig1Opt.Seed, table1Opt.Seed, fig3Opt.Seed, evalOpt.Seed = seed, seed, seed, seed

	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	var summary strings.Builder
	fmt.Fprintf(&summary, "Reproduction run: mode=%s seed=%d at %s\n\n",
		mode, seed, profiling.Timestamp())

	// --- Section II ---
	if sel("fig1") {
		res, err := runTimed(&summary, "Figure 1 (internal interference grid)", parallel, *seqBase,
			func(par int) (*experiments.Fig1Result, error) {
				o := fig1Opt
				o.Parallel = par
				return experiments.Fig1(o)
			})
		if err != nil {
			fatal(err)
		}
		text := res.Aggregate.Render() + "\n" + res.PerWriter.Render()
		// The figure above is measured under production noise, as the
		// paper's was. The qualitative shape claims concern *internal*
		// interference, so they are validated against a noise-free run of
		// the same grid (at small scale, external noise otherwise swamps
		// the means that 512 real targets would average out).
		clean := fig1Opt
		clean.NoNoise = true
		clean.Samples = 2
		clean.Parallel = parallel
		cres, err := experiments.Fig1(clean)
		if err != nil {
			fatal(err)
		}
		if bad := experiments.Fig1ShapeChecks(cres, clean); len(bad) > 0 {
			text += "\nshape-check (noise-free grid) violations:\n  " + strings.Join(bad, "\n  ") + "\n"
			fmt.Fprintf(&summary, "Fig 1: %d shape violations (see fig1.txt)\n", len(bad))
		} else {
			text += "\nshape-check: all Figure 1 qualitative claims hold on the noise-free grid\n"
			fmt.Fprintf(&summary, "Fig 1: internal-interference shapes hold (%d grid points)\n",
				len(fig1Opt.Ratios)*len(fig1Opt.SizesMB))
		}
		write(out, "fig1.txt", text)
	}

	var t1 *experiments.TableIResult
	if sel("table1") || sel("fig2") {
		var err error
		t1, err = runTimed(&summary, "Table I (external interference variability)", parallel, *seqBase,
			func(par int) (*experiments.TableIResult, error) {
				o := table1Opt
				o.Parallel = par
				return experiments.TableI(o)
			})
		if err != nil {
			fatal(err)
		}
	}
	if sel("table1") && t1 != nil {
		var b strings.Builder
		b.WriteString(t1.Table.Render())
		b.WriteString("\nImbalance factors (slowest/fastest writer):\n")
		for _, s := range t1.Series {
			sum := metrics.Summarize(s.Imbalances)
			fmt.Fprintf(&b, "  %-20s avg %.2f  max %.2f\n", s.Machine, sum.Mean, sum.Max)
		}
		write(out, "table1.txt", b.String())
		for _, s := range t1.Series {
			fmt.Fprintf(&summary, "Table I %-18s CoV %.0f%%\n", s.Machine, s.Summary.CoVPercent())
		}
	}
	if sel("fig2") && t1 != nil {
		var b strings.Builder
		for _, h := range experiments.Fig2(t1, 12) {
			b.WriteString(h.Render())
			b.WriteByte('\n')
		}
		write(out, "fig2.txt", b.String())
	}

	if sel("fig3") {
		res, err := runTimed(&summary, "Figure 3 (imbalanced concurrent writers)", parallel, *seqBase,
			func(par int) (*experiments.Fig3Result, error) {
				o := fig3Opt
				o.Parallel = par
				return experiments.Fig3(o)
			})
		if err != nil {
			fatal(err)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "Test 1 imbalance factor: %.2f\n", res.Imbalance1)
		fmt.Fprintf(&b, "Test 2 imbalance factor: %.2f\n", res.Imbalance2)
		fmt.Fprintf(&b, "Overall average imbalance: %.2f (max %.2f)\n",
			res.AvgImbalance, res.MaxImbalance)
		write(out, "fig3.txt", b.String())
		fmt.Fprintf(&summary, "Fig 3: imbalance avg %.2f, max %.2f (paper: avg ≈2, up to 3.44)\n",
			res.AvgImbalance, res.MaxImbalance)
	}

	// --- Section IV ---
	var evalResults []*experiments.EvalResult
	if sel("fig5") || sel("fig7") {
		panels, err := runTimed(&summary, "Figure 5 (Pixie3D, MPI-IO vs adaptive)", parallel, *seqBase,
			func(par int) (*experiments.Fig5Result, error) {
				o := evalOpt
				o.Parallel = par
				return experiments.Fig5(experiments.Fig5Options{Eval: o})
			})
		if err != nil {
			fatal(err)
		}
		var b strings.Builder
		for _, er := range panels.Panels {
			b.WriteString(er.Figure.Render())
			b.WriteByte('\n')
			tbl := experiments.SpeedupSummary(er)
			b.WriteString(tbl.Render())
			b.WriteByte('\n')
			evalResults = append(evalResults, er)
			fmt.Fprintln(&summary, experiments.SpeedupLine(er))
		}
		if sel("fig5") {
			write(out, "fig5.txt", b.String())
		}
	}
	if sel("fig6") || sel("fig7") {
		er, err := runTimed(&summary, "Figure 6 (XGC1, MPI-IO vs adaptive)", parallel, *seqBase,
			func(par int) (*experiments.EvalResult, error) {
				o := evalOpt
				o.Parallel = par
				return experiments.Fig6(o)
			})
		if err != nil {
			fatal(err)
		}
		var b strings.Builder
		b.WriteString(er.Figure.Render())
		b.WriteByte('\n')
		tbl := experiments.SpeedupSummary(er)
		b.WriteString(tbl.Render())
		evalResults = append(evalResults, er)
		fmt.Fprintln(&summary, experiments.SpeedupLine(er))
		if sel("fig6") {
			write(out, "fig6.txt", b.String())
		}
	}
	if sel("fig7") && len(evalResults) > 0 {
		step("Figure 7 (write-time standard deviations)")
		var b strings.Builder
		for _, fig := range experiments.Fig7(evalResults) {
			b.WriteString(fig.Render())
			b.WriteByte('\n')
		}
		write(out, "fig7.txt", b.String())
	}

	write(out, "summary.txt", summary.String())
	fmt.Println("\n" + summary.String())
	fmt.Printf("artifacts written to %s/\n", out)
}

func step(name string) { fmt.Println("==>", name) }

// workersFor resolves the effective worker count the campaign runner uses
// for a -parallel value.
func workersFor(parallel int) int {
	if parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// runTimed executes one driver at the configured parallelism and prints its
// wall-clock time; with -seq-baseline it reruns the driver on one worker and
// reports the observed speedup (the results are bit-identical by the
// runner's determinism contract, so only the clock differs).
func runTimed[T any](summary *strings.Builder, name string, parallel int, seqBaseline bool,
	run func(parallel int) (T, error)) (T, error) {
	step(name)
	sw := profiling.StartStopwatch()
	res, err := run(parallel)
	if err != nil {
		return res, err
	}
	par := sw.Elapsed()
	w := workersFor(parallel)
	if seqBaseline && w > 1 {
		sw = profiling.StartStopwatch()
		if _, err := run(1); err != nil {
			return res, err
		}
		seq := sw.Elapsed()
		fmt.Printf("    %.2fs on %d workers vs %.2fs sequential — %.2fx speedup\n",
			par.Seconds(), w, seq.Seconds(), seq.Seconds()/par.Seconds())
		fmt.Fprintf(summary, "timing %s: %.2fs on %d workers, %.2fs sequential (%.2fx)\n",
			name, par.Seconds(), w, seq.Seconds(), seq.Seconds()/par.Seconds())
	} else {
		fmt.Printf("    %.2fs wall-clock on %d worker(s)\n", par.Seconds(), w)
		fmt.Fprintf(summary, "timing %s: %.2fs on %d worker(s)\n", name, par.Seconds(), w)
	}
	return res, nil
}

func write(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
