// Command pfsinspect characterises a simulated machine preset the way a
// storage engineer would probe a real system: single-stream bandwidth, the
// per-target contention curve, the cache-absorption boundary, metadata
// service, and the effect of background noise. Useful for reviewing (or
// re-deriving) the calibration constants in internal/machines against the
// paper's figures.
//
// Usage:
//
//	pfsinspect -machine jaguar [-seed 42]
//	pfsinspect -scenario my-spec.json        (run a declarative scenario)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cluster"
	_ "repro/internal/experiments" // register the named scenarios
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/scenario/scenariocli"
	"repro/internal/simkernel"
	"repro/metrics"
)

func main() {
	cli := scenariocli.Register(flag.CommandLine, "")
	machine := flag.String("machine", "jaguar", "jaguar | franklin | xtp | intrepid")
	flag.Parse()

	stopProf, err := cli.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsinspect:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if cli.ScenarioRequested() {
		if err := cli.RunScenario("pfsinspect"); err != nil {
			fmt.Fprintln(os.Stderr, "pfsinspect:", err)
			os.Exit(1)
		}
		return
	}

	seed := &cli.Seed
	probeCluster := func(noise bool) *cluster.Cluster {
		c, err := cluster.Preset(*machine, cluster.Config{
			Seed: *seed, NumOSTs: 16, ProductionNoise: noise,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsinspect:", err)
			os.Exit(1)
		}
		return c
	}

	full, err := cluster.Preset(*machine, cluster.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsinspect:", err)
		os.Exit(1)
	}
	fmt.Printf("== %s ==\n", full.Name())
	fmt.Printf("storage targets: %d (experiments use %d)\n",
		full.NumOSTs(), full.ExperimentOSTs())
	cfg := full.FileSystem().Cfg
	fmt.Printf("per-target disk: %s   effective cache: %s   ingest: %s\n",
		metrics.FormatBytesPerSec(cfg.DiskBW), metrics.FormatBytes(cfg.CacheBytes),
		metrics.FormatBytesPerSec(cfg.IngestBW))
	fmt.Printf("client stream cap: %s   single-file stripe limit: %d targets\n\n",
		metrics.FormatBytesPerSec(cfg.ClientCap), cfg.MaxStripeCount)
	full.Shutdown()

	// --- Probe 1: single-stream bandwidth vs write size (cache boundary).
	fmt.Println("probe 1: single-stream write bandwidth vs size (clean system)")
	t1 := metrics.Table{Header: []string{"size", "write() BW", "write+flush BW"}}
	for _, mb := range []float64{1, 8, 32, 128, 512} {
		c := probeCluster(false)
		wbw := probeSingle(c, mb*pfs.MB, false)
		c.Shutdown()
		c = probeCluster(false)
		fbw := probeSingle(c, mb*pfs.MB, true)
		c.Shutdown()
		t1.AddRow(fmt.Sprintf("%gMB", mb),
			metrics.FormatBytesPerSec(wbw), metrics.FormatBytesPerSec(fbw))
	}
	fmt.Println(t1.Render())

	// --- Probe 2: contention curve (aggregate per-target BW vs writers).
	fmt.Println("probe 2: per-target aggregate bandwidth vs concurrent writers (128MB each)")
	t2 := metrics.Table{Header: []string{"writers/target", "aggregate/target", "per-writer"}}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		c := probeCluster(false)
		res, err := ior.Execute(c.FileSystem(), ior.Config{
			Writers: n, OSTs: []int{0}, BytesPerWriter: 128 * pfs.MB,
		})
		c.Shutdown()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsinspect:", err)
			os.Exit(1)
		}
		t2.AddRow(fmt.Sprintf("%d", n),
			metrics.FormatBytesPerSec(res.AggregateBW),
			metrics.FormatBytesPerSec(res.MeanPerWriterBW()))
	}
	fmt.Println(t2.Render())

	// --- Probe 3: metadata service under an open storm.
	fmt.Println("probe 3: metadata create storm (256 simultaneous creates)")
	{
		c := probeCluster(false)
		fs := c.FileSystem()
		k := c.Kernel()
		var last simkernel.Time
		for i := 0; i < 256; i++ {
			i := i
			k.Spawn("opener", func(p *simkernel.Proc) {
				f, err := fs.Create(p, fmt.Sprintf("probe.%d", i), pfs.Layout{OSTs: []int{i % 16}})
				if err != nil {
					panic(err)
				}
				f.Close(p)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		k.Run()
		fmt.Printf("  storm completion: %.3fs   MDS queue peak: %d   ops served: %d\n\n",
			last.Seconds(), fs.MDS.Stats.MaxQueue, fs.MDS.Stats.OpsServed)
		c.Shutdown()
	}

	// --- Probe 4: noise footprint — repeated one-writer-per-target tests.
	fmt.Println("probe 4: background-noise footprint (16 hourly-style tests, 64MB/writer)")
	var bws, imbs []float64
	for i := 0; i < 16; i++ {
		c, err := cluster.Preset(*machine, cluster.Config{
			Seed: *seed + int64(i)*997, NumOSTs: 16, ProductionNoise: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsinspect:", err)
			os.Exit(1)
		}
		res, err := ior.Execute(c.FileSystem(), ior.Config{
			Writers: 16, BytesPerWriter: 64 * pfs.MB,
		})
		c.Shutdown()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsinspect:", err)
			os.Exit(1)
		}
		bws = append(bws, res.AggregateBW/pfs.MB)
		imbs = append(imbs, res.ImbalanceFactor)
	}
	bsum := metrics.Summarize(bws)
	isum := metrics.Summarize(imbs)
	fmt.Printf("  bandwidth: mean %.0f MB/s  CoV %.0f%%\n", bsum.Mean, bsum.CoVPercent())
	fmt.Printf("  imbalance: mean %.2f  max %.2f\n", isum.Mean, isum.Max)
}

// probeSingle writes one block on target 0 and returns the bandwidth.
func probeSingle(c *cluster.Cluster, bytes float64, flush bool) float64 {
	fs := c.FileSystem()
	k := c.Kernel()
	var dur float64
	k.Spawn("probe", func(p *simkernel.Proc) {
		f, err := fs.Create(p, "probe", pfs.Layout{OSTs: []int{0}})
		if err != nil {
			panic(err)
		}
		start := p.Now().Seconds()
		f.WriteAt(p, 0, int64(bytes))
		if flush {
			f.Flush(p)
		}
		dur = p.Now().Seconds() - start
		f.Close(p)
	})
	k.Run()
	if dur <= 0 {
		return 0
	}
	return bytes / dur
}
