// Package metrics provides the result containers and renderers the
// benchmark harness uses to regenerate the paper's tables and figures as
// text: tables (Table I), bar/series figures (Figures 1, 5, 6, 7), and
// histograms (Figure 2). Everything renders to aligned ASCII and to CSV so
// results can be both read in a terminal and re-plotted.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Summary re-exports the statistics summary for public consumers.
type Summary = stats.Summary

// Summarize computes a Summary over samples.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// ImbalanceFactor returns slowest/fastest (the paper's Section II metric).
func ImbalanceFactor(xs []float64) float64 { return stats.ImbalanceFactor(xs) }

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting commas away by
// replacement — cells in this codebase are numeric or simple labels).
func (t *Table) CSV() string {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = clean(h)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, clean(c))
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Point is one measured point of a figure series: a label (x), a value (y)
// and its observed min/max across samples (the paper's error bars).
type Point struct {
	Label string
	Value float64
	Min   float64
	Max   float64
}

// Series is one line/bar-group of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point computed from samples (value = mean, bars = min/max).
func (s *Series) Add(label string, samples []float64) {
	sum := stats.Summarize(samples)
	s.Points = append(s.Points, Point{Label: label, Value: sum.Mean, Min: sum.Min, Max: sum.Max})
}

// AddValue appends a single-valued point.
func (s *Series) AddValue(label string, v float64) {
	s.Points = append(s.Points, Point{Label: label, Value: v, Min: v, Max: v})
}

// Figure is a titled set of series sharing x labels, with a y unit.
type Figure struct {
	Title  string
	YUnit  string
	Series []Series
}

// AddSeries appends a series.
func (f *Figure) AddSeries(s Series) { f.Series = append(f.Series, s) }

// labels returns the union of x labels in first-seen order.
func (f *Figure) labels() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.Label] {
				seen[p.Label] = true
				out = append(out, p.Label)
			}
		}
	}
	return out
}

// Render draws the figure as a table: one row per x label, one column per
// series ("value [min..max]").
func (f *Figure) Render() string {
	t := Table{Title: f.Title}
	t.Header = append(t.Header, "x")
	for _, s := range f.Series {
		t.Header = append(t.Header, s.Name+" ("+f.YUnit+")")
	}
	byLabel := make([]map[string]Point, len(f.Series))
	for i, s := range f.Series {
		byLabel[i] = map[string]Point{}
		for _, p := range s.Points {
			byLabel[i][p.Label] = p
		}
	}
	for _, lbl := range f.labels() {
		row := []string{lbl}
		for i := range f.Series {
			p, ok := byLabel[i][lbl]
			if !ok {
				row = append(row, "-")
				continue
			}
			if p.Min == p.Max {
				row = append(row, fmt.Sprintf("%.2f", p.Value))
			} else {
				row = append(row, fmt.Sprintf("%.2f [%.2f..%.2f]", p.Value, p.Min, p.Max))
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// Chart draws the figure as horizontal ASCII bars scaled to the maximum
// value, one block per (label, series).
func (f *Figure) Chart(width int) string {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Value > maxV {
				maxV = p.Value
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	nameW := 0
	for _, s := range f.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s (unit: %s)\n", f.Title, f.YUnit)
	}
	byLabel := make([]map[string]Point, len(f.Series))
	for i, s := range f.Series {
		byLabel[i] = map[string]Point{}
		for _, p := range s.Points {
			byLabel[i][p.Label] = p
		}
	}
	for _, lbl := range f.labels() {
		fmt.Fprintf(&b, "%s\n", lbl)
		for i, s := range f.Series {
			p, ok := byLabel[i][lbl]
			if !ok {
				continue
			}
			bar := int(math.Round(p.Value / maxV * float64(width)))
			fmt.Fprintf(&b, "  %-*s |%-*s %.2f\n", nameW, s.Name, width, strings.Repeat("#", bar), p.Value)
		}
	}
	return b.String()
}

// CSV renders the figure's points as rows (series,label,value,min,max).
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series,label,value,min,max\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%s,%g,%g,%g\n",
				strings.ReplaceAll(s.Name, ",", ";"),
				strings.ReplaceAll(p.Label, ",", ";"), p.Value, p.Min, p.Max)
		}
	}
	return b.String()
}

// HistogramFigure renders sample data as the paper's Figure 2 histograms.
type HistogramFigure struct {
	Title string
	XUnit string
	Bins  int
	Data  []float64
}

// Render draws the histogram with ASCII bars.
func (h *HistogramFigure) Render() string {
	bins := h.Bins
	if bins <= 0 {
		bins = 12
	}
	hist := stats.HistogramOf(h.Data, bins)
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s (x: %s, n=%d)\n", h.Title, h.XUnit, len(h.Data))
	}
	b.WriteString(hist.Render(40))
	return b.String()
}

// FormatBytesPerSec pretty-prints a bandwidth.
func FormatBytesPerSec(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GB/s", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MB/s", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2f KB/s", v/(1<<10))
	}
	return fmt.Sprintf("%.0f B/s", v)
}

// FormatBytes pretty-prints a byte volume.
func FormatBytes(v float64) string {
	switch {
	case v >= 1<<40:
		return fmt.Sprintf("%.2f TB", v/(1<<40))
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2f KB", v/(1<<10))
	}
	return fmt.Sprintf("%.0f B", v)
}

// SortedKeys returns the sorted keys of a string-keyed map (determinism
// helper for report generation).
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
