package metrics

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"name", "v"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatal("missing title")
	}
	if !strings.Contains(lines[2], "-----") {
		t.Fatal("missing separator")
	}
	// Columns aligned: "alpha" sets width 5.
	if !strings.HasPrefix(lines[4], "b    ") {
		t.Fatalf("misaligned row: %q", lines[4])
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b,c"}}
	tb.AddRow("1", "2,3")
	csv := tb.CSV()
	want := "a,b;c\n1,2;3\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestSeriesAddComputesBars(t *testing.T) {
	var s Series
	s.Add("512", []float64{10, 20, 30})
	p := s.Points[0]
	if p.Value != 20 || p.Min != 10 || p.Max != 30 {
		t.Fatalf("point = %+v", p)
	}
	s.AddValue("1024", 7)
	if s.Points[1].Min != 7 || s.Points[1].Max != 7 {
		t.Fatal("AddValue bars wrong")
	}
}

func TestFigureRenderUnionOfLabels(t *testing.T) {
	f := Figure{Title: "Fig", YUnit: "GB/s"}
	var a, b Series
	a.Name, b.Name = "MPI", "ADAPTIVE"
	a.AddValue("512", 1)
	a.AddValue("1024", 2)
	b.AddValue("1024", 3)
	f.AddSeries(a)
	f.AddSeries(b)
	out := f.Render()
	if !strings.Contains(out, "512") || !strings.Contains(out, "1024") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "-") { // missing cell marker for ADAPTIVE@512
		t.Fatalf("missing-cell marker absent:\n%s", out)
	}
}

func TestFigureChart(t *testing.T) {
	f := Figure{Title: "Fig", YUnit: "x"}
	var s Series
	s.Name = "S"
	s.AddValue("a", 10)
	s.AddValue("b", 5)
	f.AddSeries(s)
	out := f.Chart(10)
	if !strings.Contains(out, "##########") {
		t.Fatalf("full bar missing:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Fatalf("half bar missing:\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{}
	var s Series
	s.Name = "m,1"
	s.AddValue("x,y", 2)
	f.AddSeries(s)
	csv := f.CSV()
	if !strings.Contains(csv, "m;1,x;y,2,2,2") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestHistogramFigure(t *testing.T) {
	h := HistogramFigure{Title: "H", XUnit: "MB/s", Bins: 4,
		Data: []float64{1, 2, 2, 3, 9}}
	out := h.Render()
	if !strings.Contains(out, "n=5") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if strings.Count(out, "\n") != 5 {
		t.Fatalf("bin lines wrong:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		512:     "512 B/s",
		2048:    "2.00 KB/s",
		3 << 20: "3.00 MB/s",
		5 << 30: "5.00 GB/s",
	}
	for v, want := range cases { //repro:allow nodeterm independent table-driven cases over a pure formatter
		if got := FormatBytesPerSec(v); got != want {
			t.Errorf("FormatBytesPerSec(%v) = %q, want %q", v, got, want)
		}
	}
	if got := FormatBytes(float64(3) * (1 << 40)); got != "3.00 TB" {
		t.Errorf("FormatBytes TB = %q", got)
	}
	if got := FormatBytes(100); got != "100 B" {
		t.Errorf("FormatBytes B = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sorted keys = %v", got)
	}
}

func TestSummaryReexports(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 {
		t.Fatal("Summarize re-export broken")
	}
	if ImbalanceFactor([]float64{1, 3.44}) != 3.44 {
		t.Fatal("ImbalanceFactor re-export broken")
	}
}
