package cluster

import (
	"fmt"
	"time"

	"repro/internal/interference"
	"repro/internal/machines"
	"repro/internal/pfs"
)

// MachineSpec describes a custom simulated machine in public terms, for
// users modelling systems beyond the paper's three presets. Zero fields
// take the validated defaults of the storage model (which resemble the
// paper's Jaguar calibration).
type MachineSpec struct {
	// Name labels the machine in diagnostics.
	Name string

	// NumOSTs is the storage-target count.
	NumOSTs int

	// DiskMBps is the per-target disk write bandwidth in MB/s.
	DiskMBps float64

	// CacheMB is the effective per-target write-back budget in MB.
	CacheMB float64

	// IngestMBps is the per-target network acceptance rate in MB/s.
	IngestMBps float64

	// ClientCapMBps caps a single client stream in MB/s.
	ClientCapMBps float64

	// ContentionAlpha/Beta parameterise the disk-efficiency decay
	// eff(n) = 1/(1+alpha*(n-1)^beta) under n interleaved streams.
	ContentionAlpha float64
	ContentionBeta  float64

	// MaxStripeCount limits targets per file (the Lustre 1.6 value is
	// 160).
	MaxStripeCount int

	// StripeSizeMB is the default stripe width in MB.
	StripeSizeMB int

	// WriteLatency is the fixed per-write-op overhead.
	WriteLatency time.Duration

	// MDSCapacity and MDSServiceMs describe the metadata server.
	MDSCapacity  int
	MDSServiceMs float64

	// Noise optionally carries a production background-load profile; nil
	// means no noise process is available (Config.ProductionNoise then
	// falls back to the default profile).
	Noise *interference.NoiseConfig
}

// Custom builds a cluster from a user-defined machine specification.
func Custom(spec MachineSpec, cfg Config) (*Cluster, error) {
	if spec.Name == "" {
		spec.Name = "custom"
	}
	fsCfg := pfs.Config{
		NumOSTs:        spec.NumOSTs,
		DiskBW:         spec.DiskMBps * pfs.MB,
		CacheBytes:     spec.CacheMB * pfs.MB,
		IngestBW:       spec.IngestMBps * pfs.MB,
		ClientCap:      spec.ClientCapMBps * pfs.MB,
		MaxStripeCount: spec.MaxStripeCount,
		StripeSize:     int64(spec.StripeSizeMB) * 1024 * 1024,
		WriteLatency:   spec.WriteLatency,
		MDSCapacity:    spec.MDSCapacity,
		MDSServiceMean: spec.MDSServiceMs / 1000,
	}
	if spec.ContentionAlpha > 0 {
		beta := spec.ContentionBeta
		if beta <= 0 {
			beta = 1
		}
		fsCfg.DiskEff = pfs.EffCurve{Alpha: spec.ContentionAlpha, Beta: beta}
	}
	if fsCfg.NumOSTs < 0 || spec.DiskMBps < 0 || spec.CacheMB < 0 {
		return nil, fmt.Errorf("cluster: negative machine parameters")
	}
	m := machines.Machine{
		Name:           spec.Name,
		FS:             fsCfg,
		ExperimentOSTs: spec.NumOSTs,
	}
	if spec.Noise != nil {
		m.Noise = *spec.Noise
	}
	c, err := fromMachine(m, cfg)
	if err != nil {
		return nil, err
	}
	if m.ExperimentOSTs == 0 {
		c.machine.ExperimentOSTs = c.NumOSTs()
	}
	return c, nil
}
