package cluster

import (
	"fmt"
	"testing"

	"repro/internal/interference"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

func failScript() interference.FailureConfig {
	return interference.FailureConfig{
		Enabled: true,
		// Crash before the first data write is issued (creates only touch
		// the MDS), so new writes against OST 0 fail rather than stall.
		Episodes:    []interference.FailureEpisode{{OST: 0, At: 0.0001, DeadFor: 0.5, RebuildFor: 1, RebuildTax: 0.4}},
		DeadTimeout: 0.2,
	}
}

// worldProbe runs a small rank workload through the cluster's world layer
// (exercising the recycled mpisim world and rank mailboxes) and returns a
// per-rank completion-time fingerprint plus the backing mpisim world.
func worldProbe(t testing.TB, c *Cluster) ([]float64, *mpisim.World) {
	t.Helper()
	const ranks = 8
	w := c.NewWorld(ranks)
	times := make([]float64, ranks)
	j := w.Launch(func(r *Rank) {
		p := r.Proc()
		f, err := c.FileSystem().Create(p, fmt.Sprintf("probe.%06d", r.Rank()), pfsLayoutSingle(r.Rank()))
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.WriteAt(p, 0, 4*int64(pfs.MB)); err != nil {
			// A write against the scripted dead target times out; the rank
			// still participates in the barrier below.
			times[r.Rank()] = -p.Now().Seconds()
		}
		r.Barrier()
		f.Close(p)
		if times[r.Rank()] == 0 {
			times[r.Rank()] = p.Now().Seconds()
		}
	})
	c.RunUntilDone(j)
	return times, w.MPI()
}

// TestWorldCacheReuseBitIdentical pins the recycled-world contract: a Reset
// cluster hands back the SAME mpisim world (rank shells, mailboxes,
// freelists recycled in place) and the replica replays bit-identically to a
// fresh build — with a failure script running, so the health lifecycle is
// covered by the reuse contract too.
func TestWorldCacheReuseBitIdentical(t *testing.T) {
	cfg := Config{Seed: 5, NumOSTs: 4, Failures: failScript()}

	fresh := XTP(cfg)
	want, _ := worldProbe(t, fresh)
	fresh.Shutdown()

	c := XTP(Config{Seed: 11, NumOSTs: 4})
	defer c.Shutdown()
	_, first := worldProbe(t, c) // dirty the world with a failure-free replica
	if err := c.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	got, second := worldProbe(t, c)
	if first != second {
		t.Fatal("reset cluster rebuilt its mpisim world instead of recycling it")
	}
	if !sameTimes(got, want) {
		t.Fatalf("recycled-world replica diverged:\n got %v\nwant %v", got, want)
	}
	// The script actually ran: rank 0 writes to the dead OST 0 and fails.
	if got[0] >= 0 {
		t.Fatal("failure script did not produce the expected dead-target write failure")
	}
}

// TestWorldCacheSizeChangeRebuilds covers the cache-slot replacement path:
// a replica with a different rank count must not inherit a wrong-sized
// world.
func TestWorldCacheSizeChangeRebuilds(t *testing.T) {
	c := XTP(Config{Seed: 3, NumOSTs: 4})
	defer c.Shutdown()
	w8 := c.NewWorld(8)
	if err := c.Reset(Config{Seed: 4, NumOSTs: 4}); err != nil {
		t.Fatal(err)
	}
	w16 := c.NewWorld(16)
	if w16.Size() != 16 || w16.MPI() == w8.MPI() {
		t.Fatal("size-changed replica reused a wrong-sized world")
	}
	if err := c.Reset(Config{Seed: 5, NumOSTs: 4}); err != nil {
		t.Fatal(err)
	}
	if w := c.NewWorld(16); w.MPI() != w16.MPI() {
		t.Fatal("matching size after rebuild did not reuse the replacement world")
	}
}

// TestFailureWorldReuseZeroAlloc extends the pool's zero-alloc gate to the
// failure lifecycle: the steady-state rent → run → reset → return cycle
// stays allocation-free with a crash/rebuild script armed each replica and
// a write failing against the dead target.
func TestFailureWorldReuseZeroAlloc(t *testing.T) {
	p := &Pool{worlds: make(map[poolKey]*Cluster)}
	defer p.Close()
	cfg := Config{Seed: 42, NumOSTs: 4, Failures: failScript()}

	var cur *Cluster
	body := func(pr *simkernel.Proc) {
		// OST 0 dies at t=0.0001s; this write (issued at t=0, still in
		// flight at the crash) stalls and resumes on revival, exercising
		// the in-flight health path. The others run clean.
		cur.FileSystem().OST(pr.ID()%4).Write(pr, 1000)
	}
	cycle := func() {
		c, err := p.Rent("xtp", cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur = c
		k := c.Kernel()
		for i := 0; i < 4; i++ {
			k.Spawn("w", body)
		}
		k.Run()
		p.Return(c)
	}
	cycle() // builds the world
	cycle() // warms the reuse path
	got := testing.AllocsPerRun(100, cycle)
	if got != 0 {
		t.Fatalf("failure-lifecycle rent/run/reset/return cycle allocates %v allocs/op in steady state; want 0", got)
	}
}
