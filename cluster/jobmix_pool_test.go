package cluster

import (
	"testing"

	"repro/internal/simkernel"
)

// TestPoolShapeKeySeparatesMixes is the stale-world regression test for the
// extended pool key: renting with a different job-mix shape must never hand
// back a world built (and dirtied) for another mix, while the same shape
// keeps reusing its own world. Single-application rentals (empty shape)
// stay in their own bucket.
func TestPoolShapeKeySeparatesMixes(t *testing.T) {
	p := &Pool{worlds: make(map[poolKey]*Cluster)}
	defer p.Close()
	mixA := Config{Seed: 1, NumOSTs: 4, WorldShape: "mix[app:ckpt:4:2]"}
	mixB := Config{Seed: 1, NumOSTs: 4, WorldShape: "mix[app:ckpt:4:2 mlread:train:4:3]"}

	a, err := p.Rent("xtp", mixA)
	if err != nil {
		t.Fatal(err)
	}
	p.Return(a)

	b, err := p.Rent("xtp", mixB)
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatal("mismatched job mix reused a stale world")
	}
	p.Return(b)

	a2, err := p.Rent("xtp", mixA)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("same-mix rental did not reuse its own world")
	}
	p.Return(a2)

	single, err := p.Rent("xtp", Config{Seed: 1, NumOSTs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if single == a || single == b {
		t.Fatal("single-application rental must not share a job-mix world")
	}
	p.Return(single)
}

// TestJobMixZeroAlloc extends TestWorldReuseZeroAlloc to multi-application
// worlds: a steady-state rent → register jobs → run job-tagged traffic →
// return cycle allocates nothing, per-job accounting included (the
// attribution slices grow once and are truncated, not freed, on reset).
func TestJobMixZeroAlloc(t *testing.T) {
	p := &Pool{worlds: make(map[poolKey]*Cluster)}
	defer p.Close()
	cfg := Config{Seed: 42, NumOSTs: 4, WorldShape: "mix[zero-alloc-probe]"}

	var cur *Cluster
	write := func(pr *simkernel.Proc) {
		cur.FileSystem().OST(pr.ID()%4).Write(pr, 1000)
	}
	meta := func(pr *simkernel.Proc) {
		cur.FileSystem().MDS.Op(pr)
	}
	cycle := func() {
		c, err := p.Rent("xtp", cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur = c
		fs := c.FileSystem()
		writer := fs.RegisterJob("writer")
		storm := fs.RegisterJob("storm")
		k := c.Kernel()
		for i := 0; i < 4; i++ {
			k.SpawnJob("w", writer, write)
		}
		for i := 0; i < 2; i++ {
			k.SpawnJob("m", storm, meta)
		}
		k.Run()
		if got := fs.JobIO(writer).BytesWritten; got != 4000 {
			t.Fatalf("writer job accounted %g bytes, want 4000", got)
		}
		if got := fs.JobIO(storm).MetaOps; got != 2 {
			t.Fatalf("storm job accounted %d metadata ops, want 2", got)
		}
		p.Return(c)
	}
	cycle() // builds the world and grows the attribution slices
	cycle() // warms the reuse path
	got := testing.AllocsPerRun(100, cycle)
	if got != 0 {
		t.Fatalf("job-mix rent/run/reset/return cycle allocates %v allocs/op in steady state; want 0", got)
	}
}
