// Package cluster is the public entry point for constructing a simulated
// petascale system: a machine preset (Jaguar, Franklin, XTP — the three
// systems measured in the paper) or a custom configuration, with optional
// production background noise and artificial interference workloads.
//
// A Cluster owns the deterministic simulation kernel, the parallel file
// system model, and any interference processes. Applications are sets of
// ranks launched through NewWorld/Launch; drive everything with Run.
//
//	c, _ := cluster.Preset("jaguar", cluster.Config{Seed: 1})
//	w := c.NewWorld(4096)
//	io, _ := adios.NewIO(c, w, adios.Options{Method: adios.MethodAdaptive})
//	w.Launch(func(r *cluster.Rank) { ... })
//	c.Run()
package cluster

import (
	"fmt"
	"time"

	"repro/internal/interference"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
	"repro/internal/trace"
)

// Config adjusts a cluster on top of a machine preset (zero values keep the
// preset's calibration).
type Config struct {
	// Seed drives every stochastic component; the same seed reproduces the
	// same simulation exactly.
	Seed int64

	// NumOSTs overrides the storage-target count (useful for scaled-down
	// experiments that preserve per-target ratios).
	NumOSTs int

	// ProductionNoise enables the machine's background-load profile (other
	// jobs, analysis clusters). Presets for production machines (Jaguar,
	// Franklin) define a calibrated profile; it still must be switched on
	// explicitly so that clean measurements are the default.
	ProductionNoise bool

	// MessageLatency is the rank-to-rank control-message latency
	// (default 5µs).
	MessageLatency time.Duration

	// Failures scripts deterministic storage failures for the replica: OST
	// crash/rebuild episodes and MDS stall windows at declared virtual
	// times (see interference.FailureConfig). The zero value injects
	// nothing — failure-free replicas are bit-identical to clusters built
	// before the failure lifecycle existed.
	Failures interference.FailureConfig

	// WorldShape is a canonical description of the application structure
	// that will run on this world (empty for the classic single-application
	// experiments). It does not change simulation behaviour; it partitions
	// the reuse pool so a world is only ever Reset into a replica with the
	// same structure — e.g. a 3-job mix never reuses a world rented for a
	// different mix. Scenario executors derive it deterministically from
	// the spec (see scenario's job-mix resolver).
	WorldShape string
}

// Cluster is a simulated machine instance.
type Cluster struct {
	name    string //repro:reset-skip identity, fixed at construction
	kernel  *simkernel.Kernel
	fs      *pfs.FileSystem
	machine machines.Machine //repro:reset-skip immutable machine description; Reset re-derives configs from it
	noise   *interference.Noise
	msgLat  time.Duration

	artificial []*interference.Artificial

	failures *interference.Failures

	// noiseCache keeps the production-noise generator alive across Reset
	// even through noise-off replicas, so a later noise-on replica on the
	// same world re-arms it instead of rebuilding per-OST streams.
	noiseCache *interference.Noise

	// failCache does the same for the failure injector: cached event
	// closures survive failure-free replicas and re-arm on the next
	// failure script of the same episode count.
	failCache *interference.Failures

	// worldCache recycles mpisim worlds (rank shells, mailboxes, delivery
	// freelists) across replicas: Reset rewinds the cursor and each
	// NewWorld/NewJobWorld call re-arms the cached world at its position
	// when the rank count matches, or rebuilds that slot when it doesn't.
	worldCache  []*mpisim.World //repro:reset-skip recycled in place; Reset only rewinds worldCursor
	worldCursor int

	// key identifies the pool bucket this world was rented from (set by
	// Pool.Rent; empty for worlds built outside a pool).
	key poolKey //repro:reset-skip pool-bucket identity, owned by Pool.Rent/Return
}

// Preset builds a cluster from a machine preset name: "jaguar", "franklin",
// or "xtp" (case-insensitive on the first letter as a convenience). This is
// the single error-returning construction path; the named wrappers below
// delegate to it via mustPreset.
func Preset(name string, cfg Config) (*Cluster, error) {
	m, ok := machines.ByName(name, cfg.Seed)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown machine %q (have %v)", name, machines.Names())
	}
	return fromMachine(m, cfg)
}

// mustPreset wraps Preset for the named constructors, whose machine names
// are known and whose preset configurations are validated by tests — the
// only errors Preset can return for them are programming mistakes, so
// panicking is documented behaviour rather than an API inconsistency.
func mustPreset(name string, cfg Config) *Cluster {
	c, err := Preset(name, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Jaguar builds the ORNL Jaguar preset (672-OST Lustre scratch). It cannot
// fail for valid Config values and panics on programming errors; use
// Preset("jaguar", cfg) for an error-returning path.
func Jaguar(cfg Config) *Cluster { return mustPreset("jaguar", cfg) }

// Franklin builds the NERSC Franklin preset (96-OST Lustre). It cannot fail
// for valid Config values and panics on programming errors; use
// Preset("franklin", cfg) for an error-returning path.
func Franklin(cfg Config) *Cluster { return mustPreset("franklin", cfg) }

// XTP builds the Sandia XTP preset (40-blade PanFS). It cannot fail for
// valid Config values and panics on programming errors; use
// Preset("xtp", cfg) for an error-returning path.
func XTP(cfg Config) *Cluster { return mustPreset("xtp", cfg) }

// fsConfigFor resolves the file-system configuration a Config implies on
// machine m (shared by construction and Reset so both produce identical
// worlds).
func fsConfigFor(m machines.Machine, cfg Config) pfs.Config {
	fsCfg := m.FS
	fsCfg.Seed = cfg.Seed
	if cfg.NumOSTs > 0 {
		fsCfg.NumOSTs = cfg.NumOSTs
	}
	if cfg.Failures.Enabled && cfg.Failures.DeadTimeout > 0 {
		fsCfg.DeadTimeout = cfg.Failures.DeadTimeout
	}
	return fsCfg
}

// noiseConfigFor resolves the production-noise configuration a Config
// implies on machine m (shared by construction and Reset).
func noiseConfigFor(m machines.Machine, cfg Config) interference.NoiseConfig {
	noiseCfg := m.Noise
	noiseCfg.Seed = cfg.Seed + 1
	if !noiseCfg.Enabled {
		noiseCfg = interference.DefaultProduction(cfg.Seed + 1)
	}
	return noiseCfg
}

func fromMachine(m machines.Machine, cfg Config) (*Cluster, error) {
	k := simkernel.New()
	fs, err := pfs.New(k, fsConfigFor(m, cfg))
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		name:    m.Name,
		kernel:  k,
		fs:      fs,
		machine: m,
		msgLat:  cfg.MessageLatency,
	}
	if cfg.ProductionNoise {
		c.noise = interference.Start(fs, noiseConfigFor(m, cfg))
		c.noiseCache = c.noise
	}
	if cfg.Failures.Enabled {
		f, err := interference.StartFailures(fs, cfg.Failures)
		if err != nil {
			return nil, err
		}
		c.failures = f
		c.failCache = f
	}
	return c, nil
}

// Reset re-arms the cluster for a new replica without rebuilding it,
// producing a world indistinguishable from Preset(c.Name(), cfg): the kernel
// is reset (recycling every process goroutine), the file system reseeded in
// place, artificial-interference handles dropped, and production noise
// re-armed (or torn down) to match cfg. A Reset world runs a replica
// bit-identically to a freshly constructed one — the determinism contract
// the pool's golden tests pin down.
//
// On error the world is unusable (the kernel has already been reset) and
// must be Shutdown, which is what Pool.Rent does before falling back to
// fresh construction.
//
//repro:hotpath
func (c *Cluster) Reset(cfg Config) error {
	c.kernel.Reset()
	if err := c.fs.Reset(fsConfigFor(c.machine, cfg)); err != nil {
		return err
	}
	c.msgLat = cfg.MessageLatency
	c.worldCursor = 0
	for i := range c.artificial {
		c.artificial[i] = nil
	}
	c.artificial = c.artificial[:0]
	c.noise = nil
	if cfg.ProductionNoise {
		noiseCfg := noiseConfigFor(c.machine, cfg)
		if c.noiseCache != nil && c.noiseCache.CanReset(noiseCfg) {
			c.noiseCache.Reset(noiseCfg)
		} else {
			c.noiseCache = interference.Start(c.fs, noiseCfg)
		}
		c.noise = c.noiseCache
	}
	c.failures = nil
	if cfg.Failures.Enabled {
		if c.failCache != nil && c.failCache.CanReset(cfg.Failures) {
			if err := c.failCache.Reset(cfg.Failures); err != nil {
				return err
			}
		} else {
			f, err := interference.StartFailures(c.fs, cfg.Failures)
			if err != nil {
				return err
			}
			c.failCache = f
		}
		c.failures = c.failCache
	}
	return nil
}

// Name returns the machine preset's name.
func (c *Cluster) Name() string { return c.name }

// NumOSTs returns the number of storage targets.
func (c *Cluster) NumOSTs() int { return len(c.fs.OSTs) }

// ExperimentOSTs returns the target count the paper's experiments use on
// this machine (512 of Jaguar's 672, all of Franklin's 96-OST testbed's 80
// writer slots, all 40 XTP blades).
func (c *Cluster) ExperimentOSTs() int {
	n := c.machine.ExperimentOSTs
	if n > len(c.fs.OSTs) {
		n = len(c.fs.OSTs)
	}
	return n
}

// FileSystem exposes the underlying parallel file system model (an internal
// type; callers hold it opaquely or pass it back into this module's APIs).
func (c *Cluster) FileSystem() *pfs.FileSystem { return c.fs }

// Kernel exposes the simulation kernel (internal type, same caveat).
func (c *Cluster) Kernel() *simkernel.Kernel { return c.kernel }

// StartArtificialInterference launches the paper's Section IV interference
// program: procsPerOST continuous writers of chunkBytes each on the given
// targets (defaults: the paper's 8 targets × 3 procs × 1 GB when osts is
// nil and the other arguments are zero). Returns a handle to stop it.
func (c *Cluster) StartArtificialInterference(osts []int, procsPerOST int, chunkBytes float64) *interference.Artificial {
	cfg := interference.ArtificialConfig{OSTs: osts, ProcsPerOST: procsPerOST, ChunkBytes: chunkBytes}
	a := interference.StartArtificial(c.fs, cfg)
	c.artificial = append(c.artificial, a)
	return a
}

// StopInterference stops all artificial interference workloads, production
// noise, and any remaining scripted failures.
func (c *Cluster) StopInterference() {
	for _, a := range c.artificial {
		a.Stop()
	}
	if c.noise != nil {
		c.noise.Stop()
	}
	if c.failures != nil {
		c.failures.Stop()
	}
}

// SlowOST degrades one storage target to the given service fraction —
// a deterministic way to stage the imbalance the paper measures.
func (c *Cluster) SlowOST(idx int, factor float64) {
	c.fs.OST(idx).SetSlowFactor(factor)
}

// Trace starts sampling the storage system every interval virtual seconds,
// returning a tracer whose renderers draw activity/slowness heatmaps and
// throughput timelines (see internal/trace).
func (c *Cluster) Trace(intervalSeconds float64) *trace.Tracer {
	return trace.Start(c.fs, intervalSeconds)
}

// NewWorld creates a set of ranks on this cluster.
func (c *Cluster) NewWorld(ranks int) *World {
	return &World{
		c:    c,
		name: "app",
		w:    c.mpiWorld(ranks, mpisim.Options{Latency: c.msgLat}),
	}
}

// mpiWorld returns the next recycled mpisim world (Reset in place) when its
// rank count matches, or builds one into that cache slot. World creation
// order is deterministic per replica, so position-in-order is a stable
// identity across Resets — the same reason the pool can reuse clusters.
//
//repro:hotpath
func (c *Cluster) mpiWorld(ranks int, opt mpisim.Options) *mpisim.World {
	if c.worldCursor < len(c.worldCache) {
		w := c.worldCache[c.worldCursor]
		c.worldCursor++
		if w.Size() == ranks {
			w.Reset(opt)
			return w
		}
		w = mpisim.NewWorld(c.kernel, ranks, opt)
		c.worldCache[c.worldCursor-1] = w
		return w
	}
	w := mpisim.NewWorld(c.kernel, ranks, opt)
	c.worldCache = append(c.worldCache, w)
	c.worldCursor++
	return w
}

// NewJobWorld creates a set of ranks for one application of a co-scheduled
// job mix: the world's processes are named after the job and tagged with its
// file-system job id (from pfs.FileSystem.RegisterJob), so the storage layer
// attributes their traffic. Multiple job worlds share the cluster's kernel
// and file system; each has its own barrier and mailbox state.
func (c *Cluster) NewJobWorld(name string, job int, ranks int) *World {
	return &World{
		c:    c,
		name: name,
		w:    c.mpiWorld(ranks, mpisim.Options{Latency: c.msgLat, Job: job}),
	}
}

// Run drives the simulation until no work remains (or Stop is called) and
// returns the final virtual time in seconds. Interference processes run
// forever; use RunUntilIdleOf for workloads sharing a kernel with them.
func (c *Cluster) Run() float64 {
	return c.kernel.Run().Seconds()
}

// RunFor drives the simulation for d of virtual time.
func (c *Cluster) RunFor(d time.Duration) float64 {
	return c.kernel.RunUntil(c.kernel.Now() + simkernel.Time(d)).Seconds()
}

// RunUntilDone drives the simulation until the given world's launched ranks
// have all returned, then stops (leaving noise/interference processes
// suspended). It returns the final virtual time in seconds.
func (c *Cluster) RunUntilDone(wg *Join) float64 {
	c.kernel.Spawn("cluster-joiner", func(p *simkernel.Proc) {
		wg.wg.Wait(p)
		c.kernel.Stop()
	})
	c.kernel.Run()
	return c.kernel.Now().Seconds()
}

// Shutdown unwinds all simulation processes; call when done with the
// cluster to release goroutines.
func (c *Cluster) Shutdown() { c.kernel.Shutdown() }

// Now returns the current virtual time in seconds.
func (c *Cluster) Now() float64 { return c.kernel.Now().Seconds() }

// World is a communicator of ranks on a cluster.
type World struct {
	c    *Cluster
	name string
	w    *mpisim.World
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.w.Size() }

// Cluster returns the owning cluster.
func (w *World) Cluster() *Cluster { return w.c }

// MPI exposes the underlying message-passing world (internal type).
func (w *World) MPI() *mpisim.World { return w.w }

// Join tracks a launched application's completion.
type Join struct {
	wg *simkernel.WaitGroup
}

// Done reports whether all launched ranks have returned.
func (j *Join) Done() bool { return j.wg.Count() == 0 }

// Rank is one application process.
type Rank = mpisim.Rank

// Name returns the world's application name ("app" for NewWorld).
func (w *World) Name() string { return w.name }

// Launch starts fn on every rank. Drive the cluster with Run (or
// RunUntilDone with the returned Join).
func (w *World) Launch(fn func(r *Rank)) *Join {
	return &Join{wg: w.w.Launch(w.name, fn)}
}

// RankCont is a run-to-completion rank body (see mpisim.RankCont): the
// continuation-engine counterpart of Launch's fn.
type RankCont = mpisim.RankCont

// LaunchCont starts mk(i) on every rank as a run-to-completion
// continuation: the kernel resumes each body inline on every wakeup, with
// no goroutine handoff. Same process names, spawn order, and completion
// semantics as Launch — a workload launched either way schedules the same
// events in the same order (REPRO_NO_CONT=1 is honoured by callers, not
// here; see simkernel.ContEnabled).
func (w *World) LaunchCont(mk func(i int) RankCont) *Join {
	return &Join{wg: w.w.LaunchCont(w.name, mk)}
}
