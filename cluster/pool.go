package cluster

import (
	"os"
	"strings"
)

// poolKey identifies a bucket of interchangeable reusable worlds: clusters
// built from the same machine preset at the same (requested) target count
// for the same application shape differ only in per-replica seeds, which
// Reset re-derives. The shape component (Config.WorldShape, empty for
// single-application runs) keeps job-mix worlds from ever being reused for
// a different mix.
type poolKey struct {
	machine string
	numOSTs int
	shape   string
}

// Pool hands out reusable simulation worlds. Each runner worker owns one
// Pool (they are not safe for concurrent use), rents a world per replica and
// returns it afterwards; a returned world is Reset on the next rent instead
// of being rebuilt, which recycles its process goroutines, event pool, flow
// records and RNG streams.
//
// A nil *Pool is valid and means "reuse disabled": Rent builds a fresh world
// and Return shuts it down, which is the REPRO_NO_REUSE escape hatch and the
// sequential fallback rolled into one code path.
type Pool struct {
	worlds map[poolKey]*Cluster
}

// NewPool creates an empty pool, or returns nil (reuse disabled) when the
// REPRO_NO_REUSE environment variable is set to a non-empty value.
func NewPool() *Pool {
	if os.Getenv("REPRO_NO_REUSE") != "" {
		return nil
	}
	return &Pool{worlds: make(map[poolKey]*Cluster)}
}

// Rent returns a world for the given machine preset and configuration,
// reusing (and Resetting) a previously returned world of the same shape when
// one is available. The caller must hand the world back with Return — also
// on error and cancellation paths, which is why the scenario executors defer
// it immediately. If an available world fails to Reset it is shut down and
// the error returned (the same configuration error a fresh build would hit).
//
//repro:hotpath
func (p *Pool) Rent(machine string, cfg Config) (*Cluster, error) {
	if p == nil {
		return Preset(machine, cfg)
	}
	key := poolKey{machine: strings.ToLower(machine), numOSTs: cfg.NumOSTs, shape: cfg.WorldShape}
	if c, ok := p.worlds[key]; ok {
		delete(p.worlds, key)
		if err := c.Reset(cfg); err != nil {
			c.Shutdown()
			return nil, err
		}
		return c, nil
	}
	c, err := Preset(machine, cfg)
	if err != nil {
		return nil, err
	}
	c.key = key
	return c, nil
}

// Return hands a rented world back to the pool for reuse. Worlds that did
// not come from a live pool (nil pool, or a cluster built directly) are shut
// down instead, as is a world whose bucket is already occupied. Return(nil)
// is a no-op so error paths can return whatever Rent produced.
//
//repro:hotpath
func (p *Pool) Return(c *Cluster) {
	if c == nil {
		return
	}
	if p == nil || c.key == (poolKey{}) {
		c.Shutdown()
		return
	}
	if _, occupied := p.worlds[c.key]; occupied {
		c.Shutdown()
		return
	}
	p.worlds[c.key] = c
}

// Close shuts down every pooled world. Call it when the worker is done (the
// runner's per-worker cleanup hook does).
func (p *Pool) Close() {
	if p == nil {
		return
	}
	for k, c := range p.worlds { //repro:allow nodeterm teardown outside any simulation; shutdown order is immaterial
		c.Shutdown()
		delete(p.worlds, k)
	}
}
