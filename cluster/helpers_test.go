package cluster

import "repro/internal/pfs"

// pfsLayoutSingle pins a test file to one storage target.
func pfsLayoutSingle(i int) pfs.Layout {
	return pfs.Layout{OSTs: []int{i % 4}}
}
