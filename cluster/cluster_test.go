package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestPresets(t *testing.T) {
	cases := map[string]int{"jaguar": 672, "franklin": 96, "xtp": 40}
	for name, osts := range cases { //repro:allow nodeterm independent table-driven cases; each builds its own world
		c, err := Preset(name, Config{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NumOSTs() != osts {
			t.Errorf("%s OSTs = %d, want %d", name, c.NumOSTs(), osts)
		}
		c.Shutdown()
	}
	if _, err := Preset("bluegene", Config{}); err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Fatalf("unknown preset error = %v", err)
	}
}

func TestNamedConstructors(t *testing.T) {
	for _, c := range []*Cluster{
		Jaguar(Config{Seed: 2}),
		Franklin(Config{Seed: 2}),
		XTP(Config{Seed: 2}),
	} {
		if c.Name() == "" || c.NumOSTs() == 0 {
			t.Errorf("preset %q malformed", c.Name())
		}
		c.Shutdown()
	}
}

func TestExperimentOSTs(t *testing.T) {
	c := Jaguar(Config{Seed: 1})
	defer c.Shutdown()
	if got := c.ExperimentOSTs(); got != 512 {
		t.Fatalf("Jaguar experiment OSTs = %d, want the paper's 512", got)
	}
	small := Jaguar(Config{Seed: 1, NumOSTs: 16})
	defer small.Shutdown()
	if got := small.ExperimentOSTs(); got != 16 {
		t.Fatalf("scaled-down experiment OSTs = %d, want clamped 16", got)
	}
}

func TestNumOSTsOverride(t *testing.T) {
	c := Jaguar(Config{Seed: 1, NumOSTs: 24})
	defer c.Shutdown()
	if c.NumOSTs() != 24 {
		t.Fatalf("override failed: %d", c.NumOSTs())
	}
}

func TestWorldLaunchAndJoin(t *testing.T) {
	c := XTP(Config{Seed: 3})
	defer c.Shutdown()
	w := c.NewWorld(5)
	if w.Size() != 5 || w.Cluster() != c {
		t.Fatal("world wiring wrong")
	}
	ran := 0
	j := w.Launch(func(r *Rank) {
		r.Proc().Sleep(time.Duration(r.Rank()) * time.Millisecond)
		ran++
	})
	end := c.RunUntilDone(j)
	if !j.Done() || ran != 5 {
		t.Fatalf("join: done=%v ran=%d", j.Done(), ran)
	}
	if end < 0.004 {
		t.Fatalf("virtual end time %v too small", end)
	}
}

func TestProductionNoisePerturbsAndStops(t *testing.T) {
	c := Jaguar(Config{Seed: 4, NumOSTs: 32, ProductionNoise: true})
	defer c.Shutdown()
	c.RunFor(10 * time.Minute)
	perturbed := 0
	fs := c.FileSystem()
	for i := 0; i < c.NumOSTs(); i++ {
		if fs.OST(i).SlowFactor() < 1 || fs.OST(i).ExternalStreams() > 0 {
			perturbed++
		}
	}
	if perturbed == 0 {
		t.Fatal("production noise inert")
	}
	c.StopInterference()
	for i := 0; i < c.NumOSTs(); i++ {
		if fs.OST(i).SlowFactor() != 1 {
			t.Fatal("noise not cleared")
		}
	}
}

func TestXTPNoiseDisabledFallsBackWhenRequested(t *testing.T) {
	// XTP is not a production machine; its preset has noise disabled, but
	// explicitly requesting ProductionNoise still yields a working profile.
	c := XTP(Config{Seed: 5, ProductionNoise: true})
	defer c.Shutdown()
	c.RunFor(10 * time.Minute)
	perturbed := 0
	for i := 0; i < c.NumOSTs(); i++ {
		if c.FileSystem().OST(i).SlowFactor() < 1 || c.FileSystem().OST(i).ExternalStreams() > 0 {
			perturbed++
		}
	}
	if perturbed == 0 {
		t.Fatal("requested noise missing on XTP")
	}
}

func TestSlowOSTAndArtificialInterference(t *testing.T) {
	c := XTP(Config{Seed: 6})
	defer c.Shutdown()
	c.SlowOST(3, 0.25)
	if got := c.FileSystem().OST(3).SlowFactor(); got != 0.25 {
		t.Fatalf("slow factor = %v", got)
	}
	a := c.StartArtificialInterference(nil, 0, 0) // paper defaults
	c.RunFor(time.Second)
	if c.FileSystem().OST(0).ActiveFlows() != 3 {
		t.Fatalf("interference flows = %d, want 3/OST", c.FileSystem().OST(0).ActiveFlows())
	}
	a.Stop()
}

func TestRunForAdvancesVirtualTime(t *testing.T) {
	c := XTP(Config{Seed: 7})
	defer c.Shutdown()
	c.Kernel().After(time.Hour, func() {}) // something beyond the horizon
	got := c.RunFor(2 * time.Second)
	if got > 2.1 {
		t.Fatalf("RunFor overshot: %v", got)
	}
	if c.Now() > 2.1 {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestCustomMachine(t *testing.T) {
	c, err := Custom(MachineSpec{
		Name:          "minifs",
		NumOSTs:       6,
		DiskMBps:      100,
		CacheMB:       64,
		IngestMBps:    300,
		ClientCapMBps: 40,
	}, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if c.Name() != "minifs" || c.NumOSTs() != 6 {
		t.Fatalf("custom cluster wrong: %s/%d", c.Name(), c.NumOSTs())
	}
	if c.ExperimentOSTs() != 6 {
		t.Fatalf("experiment OSTs = %d", c.ExperimentOSTs())
	}
	// It must actually run IO.
	w := c.NewWorld(3)
	done := 0
	j := w.Launch(func(r *Rank) {
		fs := c.FileSystem()
		f, err := fs.Create(r.Proc(), "t", pfsLayoutSingle(r.Rank()))
		if err != nil {
			t.Error(err)
			return
		}
		f.WriteAt(r.Proc(), 0, 1<<20)
		f.Close(r.Proc())
		done++
	})
	c.RunUntilDone(j)
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
}

func TestCustomMachineDefaultsFill(t *testing.T) {
	c, err := Custom(MachineSpec{}, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if c.NumOSTs() != 512 { // pfs default
		t.Fatalf("default OSTs = %d", c.NumOSTs())
	}
}

func TestCustomMachineRejectsNegative(t *testing.T) {
	if _, err := Custom(MachineSpec{DiskMBps: -5}, Config{}); err == nil {
		t.Fatal("negative disk accepted")
	}
}

func TestTraceIntegration(t *testing.T) {
	c := XTP(Config{Seed: 8})
	defer c.Shutdown()
	tr := c.Trace(0.5)
	w := c.NewWorld(4)
	j := w.Launch(func(r *Rank) {
		fs := c.FileSystem()
		f, _ := fs.Create(r.Proc(), "tr", pfsLayoutSingle(r.Rank()))
		f.WriteAt(r.Proc(), 0, 64<<20)
		f.Close(r.Proc())
	})
	c.RunUntilDone(j)
	tr.Stop()
	if len(tr.Samples()) == 0 {
		t.Fatal("trace collected no samples")
	}
}
