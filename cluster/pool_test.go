package cluster

import (
	"testing"

	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// iorProbe runs a small IOR workload on the cluster and returns its
// per-writer times — a fingerprint of the whole world (noise draws, MDS
// service times, fluid-model evolution).
func iorProbe(t testing.TB, c *Cluster) []float64 {
	t.Helper()
	r, err := ior.Execute(c.FileSystem(), ior.Config{
		Writers:        8,
		BytesPerWriter: 64 * pfs.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.WriterTimes
}

func sameTimes(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterResetBitIdentical is the cluster-level determinism contract: a
// world dirtied by one replica and Reset for another replays that replica
// bit-identically to a freshly built world — production noise, artificial
// interference and slow-OST staging included.
func TestClusterResetBitIdentical(t *testing.T) {
	cfg := Config{Seed: 42, NumOSTs: 16, ProductionNoise: true}

	run := func(c *Cluster) []float64 {
		c.SlowOST(3, 0.5)
		c.StartArtificialInterference(nil, 0, 0)
		return iorProbe(t, c)
	}

	fresh := Jaguar(cfg)
	want := run(fresh)
	fresh.Shutdown()

	reused := Jaguar(Config{Seed: 7, NumOSTs: 16, ProductionNoise: true})
	defer reused.Shutdown()
	run(reused) // dirty the world with a different replica
	if err := reused.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if got := run(reused); !sameTimes(got, want) {
		t.Fatalf("reset world diverged:\n got %v\nwant %v", got, want)
	}
}

// TestClusterResetNoiseToggle covers the noise cache across noise-off
// replicas: noise on → off → on again must still replay bit-identically,
// and the off replica must see a clean machine.
func TestClusterResetNoiseToggle(t *testing.T) {
	on := Config{Seed: 9, NumOSTs: 8, ProductionNoise: true}
	off := Config{Seed: 9, NumOSTs: 8}

	fresh := Jaguar(on)
	want := iorProbe(t, fresh)
	fresh.Shutdown()

	freshOff := Jaguar(off)
	wantOff := iorProbe(t, freshOff)
	freshOff.Shutdown()

	c := Jaguar(on)
	defer c.Shutdown()
	iorProbe(t, c)
	if err := c.Reset(off); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.NumOSTs(); i++ {
		o := c.FileSystem().OST(i)
		if o.SlowFactor() != 1 || o.ExternalStreams() != 0 {
			t.Fatalf("noise-off reset left OST %d perturbed", i)
		}
	}
	if got := iorProbe(t, c); !sameTimes(got, wantOff) {
		t.Fatalf("noise-off replica on reused world diverged")
	}
	if err := c.Reset(on); err != nil {
		t.Fatal(err)
	}
	if got := iorProbe(t, c); !sameTimes(got, want) {
		t.Fatalf("noise-on replica after off replica diverged from fresh world")
	}
}

// TestPoolRentReusesWorld pins the pool mechanics: same-shape rentals get
// the same world back (reset), different shapes get different worlds, and
// worlds from a nil pool are simply fresh.
func TestPoolRentReusesWorld(t *testing.T) {
	p := &Pool{worlds: make(map[poolKey]*Cluster)}
	defer p.Close()

	a, err := p.Rent("xtp", Config{Seed: 1, NumOSTs: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Return(a)
	b, err := p.Rent("xtp", Config{Seed: 2, NumOSTs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same-shape rental did not reuse the returned world")
	}
	other, err := p.Rent("xtp", Config{Seed: 2, NumOSTs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if other == b {
		t.Fatal("different OST count must not share a world")
	}
	p.Return(b)
	p.Return(other)

	var nilPool *Pool
	c, err := nilPool.Rent("xtp", Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nilPool.Return(c) // shuts the fresh world down
	if _, err := nilPool.Rent("nonexistent", Config{}); err == nil {
		t.Fatal("nil pool must surface Preset errors")
	}
}

// TestPoolRentSurvivesDirtyReturn is the poison test: a world returned
// mid-flight (flows in progress, writers parked — the state an errored or
// abandoned replica leaves behind) must still produce bit-identical results
// on its next rental.
func TestPoolRentSurvivesDirtyReturn(t *testing.T) {
	cfg := Config{Seed: 21, NumOSTs: 8, ProductionNoise: true}

	fresh := Jaguar(cfg)
	want := iorProbe(t, fresh)
	fresh.Shutdown()

	p := &Pool{worlds: make(map[poolKey]*Cluster)}
	defer p.Close()
	dirty, err := p.Rent("jaguar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Abandon a replica mid-write: launch the workload but only advance the
	// clock partway, leaving parked writers and in-flight flows.
	if _, err := ior.Launch(dirty.FileSystem(), ior.Config{Writers: 8, BytesPerWriter: 64 * pfs.MB}); err != nil {
		t.Fatal(err)
	}
	dirty.RunFor(simkernel.FromSeconds(0.05).Duration())
	p.Return(dirty)

	c, err := p.Rent("jaguar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Return(c)
	if c != dirty {
		t.Fatal("expected the dirty world back")
	}
	if got := iorProbe(t, c); !sameTimes(got, want) {
		t.Fatalf("world dirtied by an abandoned replica diverged after reset:\n got %v\nwant %v", got, want)
	}
}

// TestWorldReuseZeroAlloc gates the tentpole's allocation claim: the
// steady-state rent → run → (reset) → return cycle on a warmed, noise-free
// world allocates nothing. The seed is fixed — steady state means the RNG
// seed-expansion caches are warm, as in a benchmark's repeated replicas.
func TestWorldReuseZeroAlloc(t *testing.T) {
	p := &Pool{worlds: make(map[poolKey]*Cluster)}
	defer p.Close()
	cfg := Config{Seed: 42, NumOSTs: 4}

	var cur *Cluster
	body := func(pr *simkernel.Proc) {
		cur.FileSystem().OST(pr.ID()%4).Write(pr, 1000)
	}
	cycle := func() {
		c, err := p.Rent("xtp", cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur = c
		k := c.Kernel()
		for i := 0; i < 4; i++ {
			k.Spawn("w", body)
		}
		k.Run()
		p.Return(c)
	}
	cycle() // builds the world
	cycle() // warms the reuse path
	got := testing.AllocsPerRun(100, cycle)
	if got != 0 {
		t.Fatalf("rent/run/reset/return cycle allocates %v allocs/op in steady state; want 0", got)
	}
}

// BenchmarkReplicaSetupTeardown isolates per-replica world lifecycle cost:
// fresh-build (construct + shutdown, the pre-reuse path) versus reset (the
// pooled path). The workload itself is excluded — this is the overhead the
// reuse layer amortises. Run with -benchmem: the allocs/op ratio is the
// ISSUE's ≥10× claim.
func BenchmarkReplicaSetupTeardown(b *testing.B) {
	cfg := Config{Seed: 42, NumOSTs: 64, ProductionNoise: true}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := Jaguar(cfg)
			c.Shutdown()
		}
	})
	b.Run("reset", func(b *testing.B) {
		b.ReportAllocs()
		c := Jaguar(cfg)
		defer c.Shutdown()
		if err := c.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Reset(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
