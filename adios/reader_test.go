package adios

import (
	"testing"

	"repro/cluster"
)

// writeThenIndex runs a step through the given method and returns the
// cluster (still alive), a fresh world for readers, and the step result.
func writeThenIndex(t *testing.T, method Method) (*cluster.Cluster, *StepResult) {
	t.Helper()
	c := cluster.Jaguar(cluster.Config{Seed: 17, NumOSTs: 8})
	w := c.NewWorld(8)
	io, err := NewIO(c, w, Options{Method: method, OSTs: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var res *StepResult
	j := w.Launch(func(r *cluster.Rank) {
		f := io.Open(r, "rst")
		f.Write("rho", 1<<20, []uint64{64, 64, 32}, float64(r.Rank()), float64(r.Rank())+1)
		f.Write("phi", 2<<20, nil, 0, 1)
		rr, err := f.Close()
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	c.RunUntilDone(j)
	return c, res
}

func TestRestartReadAllMethods(t *testing.T) {
	for _, method := range []Method{MethodAdaptive, MethodMPI, MethodPOSIX} {
		c, res := writeThenIndex(t, method)
		rd, err := NewReader(c, res.Index())
		if err != nil {
			t.Fatal(err)
		}
		w2 := c.NewWorld(8)
		var bytesRead int64
		var dur float64
		j := w2.Launch(func(r *cluster.Rank) {
			start := r.Proc().Now().Seconds()
			n, err := rd.RestartRead(r)
			if err != nil {
				t.Error(method, err)
				return
			}
			if r.Rank() == 0 {
				bytesRead = n
				dur = r.Proc().Now().Seconds() - start
			}
			rd.Close(r)
		})
		c.RunUntilDone(j)
		c.Shutdown()
		if bytesRead != 3<<20 {
			t.Errorf("%s: rank 0 restart read %d bytes, want %d", method, bytesRead, 3<<20)
		}
		if dur <= 0 {
			t.Errorf("%s: restart read took no simulated time", method)
		}
	}
}

func TestReadVarAndByValue(t *testing.T) {
	c, res := writeThenIndex(t, MethodAdaptive)
	defer c.Shutdown()
	rd, err := NewReader(c, res.Index())
	if err != nil {
		t.Fatal(err)
	}
	w2 := c.NewWorld(1)
	j := w2.Launch(func(r *cluster.Rank) {
		loc, err := rd.ReadVar(r, "rho", 5)
		if err != nil {
			t.Error(err)
			return
		}
		if loc.Entry.WriterRank != 5 || loc.Entry.Length != 1<<20 {
			t.Errorf("wrong block: %+v", loc.Entry)
		}
		if _, err := rd.ReadVar(r, "ghost", -1); err == nil {
			t.Error("missing variable read succeeded")
		}
		// rho for rank k spans [k, k+1]: [2.2, 3.8] intersects ranks 2 and 3.
		locs, total, err := rd.ReadByValue(r, "rho", 2.2, 3.8)
		if err != nil {
			t.Error(err)
			return
		}
		if len(locs) != 2 || total != 2<<20 {
			t.Errorf("value read: %d blocks, %d bytes", len(locs), total)
		}
	})
	c.RunUntilDone(j)
}

func TestNewReaderNilIndex(t *testing.T) {
	c := cluster.Jaguar(cluster.Config{Seed: 1, NumOSTs: 4})
	defer c.Shutdown()
	if _, err := NewReader(c, nil); err == nil {
		t.Fatal("nil index accepted")
	}
}

func TestReaderReusesHandles(t *testing.T) {
	c, res := writeThenIndex(t, MethodAdaptive)
	defer c.Shutdown()
	rd, _ := NewReader(c, res.Index())
	opsBefore := -1
	w2 := c.NewWorld(1)
	j := w2.Launch(func(r *cluster.Rank) {
		// Two reads of blocks in the same file must open it once.
		loc, err := rd.ReadVar(r, "rho", 0)
		if err != nil {
			t.Error(err)
			return
		}
		opsBefore = c.FileSystem().MDS.Stats.OpsServed
		if err := rd.ReadBlock(r, loc); err != nil {
			t.Error(err)
		}
		if got := c.FileSystem().MDS.Stats.OpsServed; got != opsBefore {
			t.Errorf("re-read reopened the file: MDS ops %d -> %d", opsBefore, got)
		}
	})
	c.RunUntilDone(j)
}

func TestReaderCloseClosesEveryHandle(t *testing.T) {
	c, res := writeThenIndex(t, MethodAdaptive)
	defer c.Shutdown()
	rd, err := NewReader(c, res.Index())
	if err != nil {
		t.Fatal(err)
	}
	w2 := c.NewWorld(1)
	j := w2.Launch(func(r *cluster.Rank) {
		// Touch every writer's block so the reader holds several distinct
		// subfile handles.
		for rank := int32(0); rank < 8; rank++ {
			if _, err := rd.ReadVar(r, "rho", rank); err != nil {
				t.Error(err)
				return
			}
		}
		open := len(rd.handles)
		if open < 2 {
			t.Errorf("want multiple open handles, got %d", open)
			return
		}
		before := c.FileSystem().MDS.Stats.OpsServed
		rd.Close(r)
		if got := c.FileSystem().MDS.Stats.OpsServed - before; got != open {
			t.Errorf("Close charged %d MDS ops, want one per handle (%d)", got, open)
		}
		if len(rd.handles) != 0 {
			t.Errorf("%d handles survived Close", len(rd.handles))
		}
		// Closing an already-closed reader charges nothing.
		before = c.FileSystem().MDS.Stats.OpsServed
		rd.Close(r)
		if got := c.FileSystem().MDS.Stats.OpsServed; got != before {
			t.Errorf("second Close charged %d extra MDS ops", got-before)
		}
	})
	c.RunUntilDone(j)
}
