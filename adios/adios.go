// Package adios is the public middleware API of this reproduction, shaped
// after the ADIOS usage model the paper's adaptive IO method lives in:
// open an output step, declare variable writes (buffered), and close — the
// transport method moves the bytes at close time.
//
// Three transport methods are provided, selected per IO instance exactly as
// ADIOS selects them per group:
//
//   - MethodMPI — the tuned MPI-IO baseline: one shared file, buffered
//     contiguous blocks, stripe-aligned placement, limited to 160 storage
//     targets by Lustre 1.6 (the paper's comparison baseline).
//   - MethodPOSIX — file per process on round-robin targets (IOR-style).
//   - MethodAdaptive — the paper's contribution: per-target writer groups
//     with sub-coordinators, a coordinator that shifts queued writers from
//     slow targets to already-finished fast ones, and local + global BP
//     index generation.
//
// Example (inside a rank function):
//
//	f := io.Open(r, "restart.0001")
//	f.Write("rho", 16<<20, []uint64{128,128,128}, -1, 1)
//	f.Write("phi", 16<<20, []uint64{128,128,128}, 0, 2)
//	res, err := f.Close()
package adios

import (
	"fmt"
	"time"

	"repro/cluster"
	"repro/internal/bp"
	"repro/internal/core"
	"repro/internal/iomethod"
	"repro/internal/transports/mpiio"
	"repro/internal/transports/posix"
	"repro/internal/transports/staging"
)

// Method names a transport.
type Method string

// Available transports.
const (
	MethodMPI      Method = "MPI"
	MethodPOSIX    Method = "POSIX"
	MethodAdaptive Method = "ADAPTIVE"
	// MethodStaging is the data-staging alternative the paper analyzes in
	// Section II-3: asynchronous, but bounded by staging-buffer space and
	// still exposed to file-system interference on the drain side.
	MethodStaging Method = "STAGING"
)

// Options configures an IO instance.
type Options struct {
	// Method selects the transport (default MethodAdaptive).
	Method Method

	// OSTs restricts the storage targets used (nil = all; the MPI method
	// additionally truncates to the file system's single-file stripe
	// limit).
	OSTs []int

	// StaggerOpens spaces file creates to spare the metadata server
	// (adaptive method only).
	StaggerOpens time.Duration

	// WritersPerTarget generalises the adaptive method's one-writer-per-
	// target rule (adaptive method only; default 1).
	WritersPerTarget int

	// NoGlobalIndex skips the coordinator's global index file (adaptive
	// method only), matching the paper's deployed interim configuration.
	NoGlobalIndex bool

	// HistoryAware enables the future-work extension: the coordinator
	// dispatches adaptive writes to the fastest observed idle target
	// rather than in scan order (adaptive method only).
	HistoryAware bool

	// DisableAdaptation keeps the adaptive method's structure (groups,
	// per-target serialisation, indexing) but turns the coordinator's
	// work-shifting off — the pure ablation of the mechanism.
	DisableAdaptation bool

	// StagingNodes, StagingBufferBytes and StagingLeastLoaded tune the
	// staging method (zero values pick its defaults; LeastLoaded switches
	// the drain placement to the adaptive-flavoured policy).
	StagingNodes       int
	StagingBufferBytes float64
	StagingLeastLoaded bool

	// MPISplitFiles splits the MPI method's output into this many shared
	// files (the Section II-3 alternative for reaching the whole file
	// system past the per-file stripe limit). MPI method only.
	MPISplitFiles int
}

// IO is a configured transport bound to a cluster and world, shared by all
// ranks (mirroring an ADIOS group declaration).
type IO struct {
	method iomethod.Method
	world  *cluster.World
}

// NewIO builds an IO instance. Call it once (any rank's closure may do so
// before Launch) and share the pointer across ranks.
func NewIO(c *cluster.Cluster, w *cluster.World, opt Options) (*IO, error) {
	if opt.Method == "" {
		opt.Method = MethodAdaptive
	}
	fs := c.FileSystem()
	switch opt.Method {
	case MethodMPI:
		m, err := mpiio.New(w.MPI(), fs, mpiio.Config{OSTs: opt.OSTs, SplitFiles: opt.MPISplitFiles})
		if err != nil {
			return nil, err
		}
		return &IO{method: m, world: w}, nil
	case MethodPOSIX:
		m, err := posix.New(w.MPI(), fs, posix.Config{OSTs: opt.OSTs})
		if err != nil {
			return nil, err
		}
		return &IO{method: m, world: w}, nil
	case MethodStaging:
		cfg := staging.Config{
			Nodes:       opt.StagingNodes,
			BufferBytes: opt.StagingBufferBytes,
			OSTs:        opt.OSTs,
		}
		if opt.StagingLeastLoaded {
			cfg.Policy = staging.DrainLeastLoaded
		}
		m, err := staging.New(w.MPI(), fs, cfg)
		if err != nil {
			return nil, err
		}
		return &IO{method: m, world: w}, nil
	case MethodAdaptive:
		cfg := core.Config{
			OSTs:              opt.OSTs,
			StaggerOpens:      opt.StaggerOpens,
			WritersPerTarget:  opt.WritersPerTarget,
			HistoryAware:      opt.HistoryAware,
			DisableAdaptation: opt.DisableAdaptation,
		}
		var (
			m   iomethod.Method
			err error
		)
		if opt.NoGlobalIndex {
			m, err = core.NewNoGlobalIndex(w.MPI(), fs, cfg)
		} else {
			m, err = core.New(w.MPI(), fs, cfg)
		}
		if err != nil {
			return nil, err
		}
		return &IO{method: m, world: w}, nil
	}
	return nil, fmt.Errorf("adios: unknown method %q", opt.Method)
}

// MethodName reports the active transport's name.
func (io *IO) MethodName() string { return io.method.Name() }

// File is one rank's handle on an output step: writes buffer variable
// declarations; Close performs the collective IO.
type File struct {
	io   *IO
	rank *cluster.Rank
	name string
	data iomethod.RankData
	done bool
}

// Open begins an output step for this rank. Every rank of the world must
// open the same step name and eventually Close it (the transport write is
// collective).
func (io *IO) Open(r *cluster.Rank, stepName string) *File {
	return &File{io: io, rank: r, name: stepName}
}

// Write declares one variable block: its size, dimensions, and value-range
// characteristics (carried into the BP index for value-based search).
// Writes buffer locally — as in ADIOS — and move at Close.
func (f *File) Write(name string, bytes int64, dims []uint64, min, max float64) {
	if f.done {
		panic(fmt.Sprintf("adios: Write(%s) after Close on step %q", name, f.name))
	}
	f.data.Vars = append(f.data.Vars, iomethod.VarSpec{
		Name: name, Bytes: bytes, Dims: dims, Min: min, Max: max,
	})
}

// WriteData is Write for callers holding iomethod.VarSpec values already.
func (f *File) WriteData(data iomethod.RankData) {
	if f.done {
		panic(fmt.Sprintf("adios: WriteData after Close on step %q", f.name))
	}
	if len(f.data.Vars) == 0 {
		// Alias the caller's specs instead of copying; the three-index
		// slice caps the alias so any later Write reallocates rather than
		// scribbling on the caller's backing array.
		f.data.Vars = data.Vars[:len(data.Vars):len(data.Vars)]
		return
	}
	f.data.Vars = append(f.data.Vars, data.Vars...)
}

// Close performs the collective output through the configured transport and
// returns the step's shared result (fully populated once all ranks have
// closed).
func (f *File) Close() (*StepResult, error) {
	if f.done {
		return nil, fmt.Errorf("adios: double Close on step %q", f.name)
	}
	f.done = true
	res, err := f.io.method.WriteStep(f.rank, f.name, f.data)
	if err != nil {
		return nil, err
	}
	return &StepResult{StepResult: res}, nil
}

// StepResult wraps the transport result with convenience accessors.
type StepResult struct {
	*iomethod.StepResult
}

// Index returns the merged global index of the step (nil until the step is
// fully closed, and for transports without index support).
func (r *StepResult) Index() *bp.GlobalIndex { return r.Global }

// Lookup finds a variable block by name and writer rank (rank < 0 for any)
// in the step's index.
func (r *StepResult) Lookup(name string, rank int32) (bp.Location, bool) {
	if r.Global == nil {
		return bp.Location{}, false
	}
	return r.Global.Lookup(name, rank)
}

// FindByValue returns blocks of a variable whose characteristics intersect
// [lo, hi] — the paper's interim search path in lieu of the global index.
func (r *StepResult) FindByValue(name string, lo, hi float64) []bp.Location {
	if r.Global == nil {
		return nil
	}
	return r.Global.FindByValue(name, lo, hi)
}
