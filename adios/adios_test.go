package adios

import (
	"math"
	"testing"

	"repro/cluster"
)

// runStep executes one collective output step on a small Jaguar-calibrated
// cluster with the given method and returns the result.
func runStep(t *testing.T, method Method, ranks int, bytesPerVar int64) *StepResult {
	t.Helper()
	c := cluster.Jaguar(cluster.Config{Seed: 11, NumOSTs: 8})
	defer c.Shutdown()
	w := c.NewWorld(ranks)
	io, err := NewIO(c, w, Options{Method: method, OSTs: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var res *StepResult
	j := w.Launch(func(r *cluster.Rank) {
		f := io.Open(r, "step")
		f.Write("rho", bytesPerVar, []uint64{64, 64, 64}, -1, 1)
		f.Write("phi", bytesPerVar, []uint64{64, 64, 64}, float64(r.Rank()), float64(r.Rank())+1)
		rr, err := f.Close()
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	c.RunUntilDone(j)
	if !j.Done() {
		t.Fatal("ranks did not finish")
	}
	return res
}

func TestAllMethodsWriteAllBytes(t *testing.T) {
	const ranks = 8
	const perVar = 1 << 20
	for _, m := range []Method{MethodMPI, MethodPOSIX, MethodAdaptive} {
		res := runStep(t, m, ranks, perVar)
		want := float64(ranks * 2 * perVar)
		if math.Abs(res.TotalBytes-want) > 1 {
			t.Errorf("%s: total bytes %v, want %v", m, res.TotalBytes, want)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", m, res.Elapsed)
		}
		if res.AggregateBW() <= 0 {
			t.Errorf("%s: bandwidth %v", m, res.AggregateBW())
		}
	}
}

func TestIndexLookupThroughFacade(t *testing.T) {
	res := runStep(t, MethodAdaptive, 8, 1<<20)
	if res.Index() == nil {
		t.Fatal("no index")
	}
	loc, ok := res.Lookup("rho", 3)
	if !ok || loc.Entry.Length != 1<<20 {
		t.Fatalf("lookup = %+v, %v", loc, ok)
	}
	// phi for rank r has range [r, r+1]: value search for [2.5, 2.6] must
	// hit rank 2's block only.
	hits := res.FindByValue("phi", 2.5, 2.6)
	if len(hits) != 1 || hits[0].Entry.WriterRank != 2 {
		t.Fatalf("value search = %+v", hits)
	}
}

func TestDefaultMethodIsAdaptive(t *testing.T) {
	c := cluster.Jaguar(cluster.Config{Seed: 1, NumOSTs: 4})
	defer c.Shutdown()
	w := c.NewWorld(2)
	io, err := NewIO(c, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if io.MethodName() != "ADAPTIVE" {
		t.Fatalf("default method = %s", io.MethodName())
	}
}

func TestUnknownMethodErrors(t *testing.T) {
	c := cluster.Jaguar(cluster.Config{Seed: 1, NumOSTs: 4})
	defer c.Shutdown()
	w := c.NewWorld(2)
	if _, err := NewIO(c, w, Options{Method: "HDF5"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestWriteAfterClosePanics(t *testing.T) {
	c := cluster.Jaguar(cluster.Config{Seed: 1, NumOSTs: 4})
	defer c.Shutdown()
	w := c.NewWorld(1)
	io, err := NewIO(c, w, Options{Method: MethodPOSIX})
	if err != nil {
		t.Fatal(err)
	}
	panicked := false
	w.Launch(func(r *cluster.Rank) {
		f := io.Open(r, "s")
		f.Write("v", 100, nil, 0, 1)
		if _, err := f.Close(); err != nil {
			t.Error(err)
		}
		func() {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			f.Write("w", 100, nil, 0, 1)
		}()
		if _, err := f.Close(); err == nil {
			t.Error("double close accepted")
		}
	})
	c.Run()
	if !panicked {
		t.Fatal("write-after-close did not panic")
	}
}

func TestAdaptiveBeatsMPIUnderArtificialInterference(t *testing.T) {
	// The paper's central evaluation shape (Figures 5–6): with writers
	// outnumbering targets and interference loading part of the file
	// system, adaptive IO outperforms the MPI-IO baseline.
	run := func(method Method) float64 {
		c := cluster.Jaguar(cluster.Config{Seed: 21, NumOSTs: 16})
		defer c.Shutdown()
		// MPI limited to 4 targets (stands in for the 160-OST limit at
		// scale); adaptive free to use 12.
		osts := []int{0, 1, 2, 3}
		if method == MethodAdaptive {
			osts = nil
		}
		c.StartArtificialInterference([]int{0, 1}, 3, 1<<28)
		w := c.NewWorld(32)
		io, err := NewIO(c, w, Options{Method: method, OSTs: osts})
		if err != nil {
			t.Fatal(err)
		}
		var res *StepResult
		j := w.Launch(func(r *cluster.Rank) {
			f := io.Open(r, "restart")
			f.Write("u", 32<<20, nil, 0, 1)
			rr, err := f.Close()
			if err != nil {
				t.Error(err)
				return
			}
			res = rr
		})
		c.RunUntilDone(j)
		return res.Elapsed
	}
	mpi := run(MethodMPI)
	adaptive := run(MethodAdaptive)
	if adaptive >= mpi {
		t.Fatalf("adaptive (%.2fs) should beat MPI-IO (%.2fs) under interference", adaptive, mpi)
	}
}
