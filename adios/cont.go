package adios

import (
	"fmt"

	"repro/internal/iomethod"
	"repro/internal/simkernel"
)

// Continuation-engine support. A rank body running as a run-to-completion
// state machine (cluster.World.LaunchCont) closes its output step through
// CloseCont instead of the blocking Close; the transport drives the same
// collective flow, so results and event schedules are identical to the
// goroutine engine's.

// ContCapable reports whether the configured transport can run a step on
// the continuation engine (the MPI-IO and adaptive methods can; POSIX and
// staging keep their goroutine bodies). Callers fall back to Launch/Close
// when it is false.
func (io *IO) ContCapable() bool {
	_, ok := io.method.(iomethod.ContMethod)
	return ok
}

// CloseCont is a collective close in flight: the continuation counterpart
// of File.Close. The zero value is ready; one CloseCont may be reused
// across sequential steps. Arm it with File.BeginCloseCont, drive it with
// Step (advance style — move the machine's program counter past the close
// before yielding), then read Result.
type CloseCont struct {
	sc iomethod.StepCont
}

// BeginCloseCont arms cc to perform this file's collective output. The
// transport must be ContCapable; like Close, the file is consumed (a second
// close of the same handle fails).
func (f *File) BeginCloseCont(cc *CloseCont) {
	if f.done {
		panic(fmt.Sprintf("adios: double Close on step %q", f.name))
	}
	f.done = true
	cm, ok := f.io.method.(iomethod.ContMethod)
	if !ok {
		panic("adios: BeginCloseCont on a transport without continuation support")
	}
	cc.sc = cm.BeginStepCont(f.rank, f.name, f.data)
}

// Step drives the collective close; see simkernel.Cont.
//
//repro:hotpath
func (cc *CloseCont) Step(c *simkernel.ContProc) bool { return cc.sc.Step(c) }

// Result returns what the equivalent Close call would have returned; valid
// once Step has returned true.
func (cc *CloseCont) Result() (*StepResult, error) {
	res, err := cc.sc.Result()
	if err != nil {
		return nil, err
	}
	return &StepResult{StepResult: res}, nil
}
