package adios

import (
	"fmt"
	"sort"

	"repro/cluster"
	"repro/internal/bp"
	"repro/internal/pfs"
)

// Reader reads a completed output step back through its global index — the
// restart-read path. Section IV-C of the paper argues that the adaptive
// method's extra files do not hurt the consumer: "access to any data can be
// performed using a single lookup into the index and then a direct read of
// the value(s) from the appropriate data file(s), sometimes resulting in
// improved performance" — because the subfiles spread restart reads across
// many storage targets instead of funneling them through one shared file's
// stripe set.
type Reader struct {
	c   *cluster.Cluster
	idx *bp.GlobalIndex

	// open file handles, one per data file touched, reused across reads
	// (the open cost is paid once per file per reader).
	handles map[string]*pfs.File
}

// NewReader builds a reader over a step's global index.
func NewReader(c *cluster.Cluster, idx *bp.GlobalIndex) (*Reader, error) {
	if idx == nil {
		return nil, fmt.Errorf("adios: nil index")
	}
	return &Reader{c: c, idx: idx, handles: map[string]*pfs.File{}}, nil
}

// Index returns the underlying global index.
func (rd *Reader) Index() *bp.GlobalIndex { return rd.idx }

// file opens (or reuses) the handle for a data file.
func (rd *Reader) file(r *cluster.Rank, name string) (*pfs.File, error) {
	if f, ok := rd.handles[name]; ok {
		return f, nil
	}
	f, err := rd.c.FileSystem().Open(r.Proc(), name)
	if err != nil {
		return nil, err
	}
	rd.handles[name] = f
	return f, nil
}

// ReadBlock reads one located block (a single index lookup has already
// produced loc); the calling rank blocks for the simulated IO time.
func (rd *Reader) ReadBlock(r *cluster.Rank, loc bp.Location) error {
	f, err := rd.file(r, loc.File)
	if err != nil {
		return err
	}
	f.ReadAt(r.Proc(), loc.Entry.Offset, loc.Entry.Length)
	return nil
}

// ReadVar looks a variable block up by (name, writer rank) and reads it.
// rank < 0 reads the first block of that variable.
func (rd *Reader) ReadVar(r *cluster.Rank, name string, rank int32) (bp.Location, error) {
	loc, ok := rd.idx.Lookup(name, rank)
	if !ok {
		return bp.Location{}, fmt.Errorf("adios: no block for %s/rank %d", name, rank)
	}
	return loc, rd.ReadBlock(r, loc)
}

// RestartRead reads every block the calling rank wrote in the original step
// — the paper's "restart-style read of all of the data", performed by each
// rank for its own state.
func (rd *Reader) RestartRead(r *cluster.Rank) (int64, error) {
	var total int64
	rank := int32(r.Rank())
	for _, li := range rd.idx.Locals {
		for _, e := range li.Entries {
			if e.WriterRank != rank {
				continue
			}
			if err := rd.ReadBlock(r, bp.Location{File: li.File, Entry: e}); err != nil {
				return total, err
			}
			total += e.Length
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("adios: rank %d has no blocks in this step", rank)
	}
	return total, nil
}

// ReadByValue performs the paper's characteristics-based search-and-read:
// every block of the variable whose [Min, Max] range intersects [lo, hi] is
// read. It returns the blocks read and the total bytes.
func (rd *Reader) ReadByValue(r *cluster.Rank, name string, lo, hi float64) ([]bp.Location, int64, error) {
	locs := rd.idx.FindByValue(name, lo, hi)
	var total int64
	for _, loc := range locs {
		if err := rd.ReadBlock(r, loc); err != nil {
			return nil, total, err
		}
		total += loc.Entry.Length
	}
	return locs, total, nil
}

// Close closes all file handles (metadata cost charged to the calling
// rank).
func (rd *Reader) Close(r *cluster.Rank) {
	// Each close charges an MDS operation, so the order of the closes is
	// simulation-visible: iterate the handles in sorted name order. Take
	// ownership of the map first — File.Close yields to the kernel, and
	// another rank may Close this reader in the meantime (File.Close itself
	// is idempotent, so overlapping closers remain safe).
	handles := rd.handles
	rd.handles = map[string]*pfs.File{}
	names := make([]string, 0, len(handles))
	for name := range handles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		handles[name].Close(r.Proc())
	}
}
